//! Reader for serialized metrics snapshots.
//!
//! [`MetricsRegistry::to_json`](crate::MetricsRegistry::to_json) writes
//! `cusha-metrics/v2`; snapshots from PR 3 through PR 7 are
//! `cusha-metrics/v1` (moments-only histograms, no quantiles or buckets).
//! [`MetricsSnapshot::parse`] accepts both, so tooling that consumes
//! committed artifacts (the bench perf gate, dashboard scripts) keeps
//! working across the schema bump: v1 histograms surface with
//! `p50/p90/p99 = None`.

use crate::json::{parse_json, Json};
use crate::metrics::{METRICS_SCHEMA, METRICS_SCHEMA_V1};
use std::collections::BTreeMap;

/// One deserialized histogram series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Mean as serialized.
    pub mean: f64,
    /// Median estimate (v2 only).
    pub p50: Option<f64>,
    /// 90th-percentile estimate (v2 only).
    pub p90: Option<f64>,
    /// 99th-percentile estimate (v2 only).
    pub p99: Option<f64>,
    /// Sparse log-bucket counts (v2 only; empty for v1).
    pub buckets: BTreeMap<i32, u64>,
}

/// A deserialized metrics snapshot (v1 or v2).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The schema tag the snapshot was written under.
    pub schema: String,
    /// Counter series by flat key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge series by flat key.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram series by flat key.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Parses a serialized snapshot, accepting both `cusha-metrics/v1`
    /// and `cusha-metrics/v2`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let v = parse_json(s.trim_end())?;
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != METRICS_SCHEMA && schema != METRICS_SCHEMA_V1 {
            return Err(format!("unknown metrics schema {schema:?}"));
        }
        let mut snap = MetricsSnapshot {
            schema: schema.to_string(),
            ..Default::default()
        };
        for (k, c) in obj(&v, "counters")? {
            let c = c
                .as_u64()
                .ok_or_else(|| format!("counter {k:?} is not a non-negative integer"))?;
            snap.counters.insert(k.clone(), c);
        }
        for (k, g) in obj(&v, "gauges")? {
            snap.gauges.insert(k.clone(), num(g));
        }
        for (k, h) in obj(&v, "histograms")? {
            let mut hs = HistogramSnapshot {
                count: h.get("count").and_then(Json::as_u64).unwrap_or(0),
                sum: field(h, "sum"),
                min: field(h, "min"),
                max: field(h, "max"),
                mean: field(h, "mean"),
                p50: h.get("p50").map(num),
                p90: h.get("p90").map(num),
                p99: h.get("p99").map(num),
                buckets: BTreeMap::new(),
            };
            if let Some(Json::Obj(buckets)) = h.get("buckets") {
                for (idx, c) in buckets {
                    let idx: i32 = idx
                        .parse()
                        .map_err(|_| format!("bad bucket index {idx:?} in {k:?}"))?;
                    let c = c
                        .as_u64()
                        .ok_or_else(|| format!("bad bucket count in {k:?}"))?;
                    hs.buckets.insert(idx, c);
                }
            }
            snap.histograms.insert(k.clone(), hs);
        }
        Ok(snap)
    }
}

fn obj<'a>(v: &'a Json, key: &str) -> Result<&'a [(String, Json)], String> {
    match v.get(key) {
        Some(Json::Obj(fields)) => Ok(fields),
        Some(_) => Err(format!("{key:?} is not an object")),
        None => Ok(&[]),
    }
}

/// Numeric field with JSON `null` (serialized non-finite) reading as NaN.
fn num(v: &Json) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

fn field(h: &Json, key: &str) -> f64 {
    h.get(key).map(num).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn v2_round_trips_through_the_reader() {
        let mut r = MetricsRegistry::new();
        r.add("runs", &[("engine", "cw")], 3);
        r.set_gauge("eff", &[], 0.5);
        for v in [1.0, 2.0, 3.0] {
            r.observe("lat", &[], v);
        }
        let snap = MetricsSnapshot::parse(&r.to_json()).unwrap();
        assert_eq!(snap.schema, METRICS_SCHEMA);
        assert_eq!(snap.counters.get("runs{engine=cw}"), Some(&3));
        assert_eq!(snap.gauges.get("eff"), Some(&0.5));
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 6.0);
        let expected = r.histogram("lat", &[]).unwrap();
        assert_eq!(h.p50, Some(expected.p50()));
        assert_eq!(h.buckets, expected.buckets);
    }

    #[test]
    fn v1_snapshots_still_parse() {
        let v1 = "{\"schema\":\"cusha-metrics/v1\",\"counters\":{\"iters\":5},\
                  \"gauges\":{},\"histograms\":{\"h\":{\"count\":2,\"sum\":3,\
                  \"min\":1,\"max\":2,\"mean\":1.5}}}\n";
        let snap = MetricsSnapshot::parse(v1).unwrap();
        assert_eq!(snap.schema, METRICS_SCHEMA_V1);
        assert_eq!(snap.counters.get("iters"), Some(&5));
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.mean, 1.5);
        assert_eq!(h.p99, None, "v1 has no quantiles");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        assert!(MetricsSnapshot::parse("{\"schema\":\"cusha-metrics/v9\"}").is_err());
        assert!(MetricsSnapshot::parse("not json").is_err());
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let mut r = MetricsRegistry::new();
        r.add("q", &[("id", "a\"b\\c\nd")], 1);
        let snap = MetricsSnapshot::parse(&r.to_json()).unwrap();
        assert_eq!(snap.counters.get("q{id=a\"b\\c\nd}"), Some(&1));
    }
}
