#![warn(missing_docs)]

//! Unified observability layer of the CuSha reproduction.
//!
//! The paper's argument rests on *observing* architectural behaviour
//! (Table 2 / Figure 8 profile counters); this crate turns the reproduction's
//! ad-hoc per-crate statistics into one subsystem shared by every engine:
//!
//! * [`trace`] — a lightweight span/event [`Tracer`]: ring-buffered
//!   [`Event`]s stamped with the **modeled clock** (the simulator's
//!   accumulated seconds, not wall time), organised into lanes
//!   (`pid` = device, `tid` = engine / copy / kernel / fault / per-SM).
//!   Disabled by default: a default-constructed tracer is a no-op handle
//!   that performs no allocation on any recording call.
//! * [`metrics`] — a [`MetricsRegistry`] of counters, gauges and histograms
//!   keyed by name + label pairs, with a versioned, byte-stable JSON
//!   snapshot. Engine stats types (`KernelStats`, `RunStats`, `FaultStats`,
//!   `MultiRunStats`) record themselves into it through one schema.
//! * [`export`] — exporters: Chrome `chrome://tracing` trace-event JSON
//!   (one lane per device and per simulated SM) and a structural validator
//!   used by the schema-stability tests and CI.
//! * [`log`] — a global leveled logger writing to stderr, so stdout stays
//!   reserved for machine-consumable results.
//!
//! See `DESIGN.md` §4.7 "Observability model" for the span taxonomy and
//! clock semantics.

pub mod export;
pub mod json;
pub mod log;
pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use export::{chrome_trace_json, validate_chrome_trace};
pub use json::{parse_json, Json};
pub use log::Level;
pub use metrics::{Histogram, MetricsRegistry, METRICS_SCHEMA, METRICS_SCHEMA_V1};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use trace::{lanes, ArgVal, Event, Ph, SpanGuard, Tracer, TRACE_SCHEMA};
