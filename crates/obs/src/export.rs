//! Exporters: Chrome trace-event JSON and its structural validator.
//!
//! [`chrome_trace_json`] renders a [`Tracer`]'s buffer in the
//! `chrome://tracing` / Perfetto "JSON Array Format": a `traceEvents` list
//! of metadata (`ph:"M"` process/thread names), complete spans (`ph:"X"`),
//! instants (`ph:"i"`) and counters (`ph:"C"`), with modeled-clock
//! timestamps in microseconds. Lanes: one process per device (plus the
//! fleet lane), one thread per engine/copy/kernel/fault role and per
//! simulated SM.

use crate::json::{push_f64, push_str_lit};
use crate::trace::{ArgVal, Ph, Tracer, TRACE_SCHEMA};

fn push_args(out: &mut String, args: &[(&'static str, ArgVal)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_lit(out, k);
        out.push(':');
        match v {
            ArgVal::U64(u) => out.push_str(&u.to_string()),
            ArgVal::F64(f) => push_f64(out, *f),
            ArgVal::Str(s) => push_str_lit(out, s),
        }
    }
    out.push('}');
}

/// Renders the tracer's buffered events as Chrome trace JSON. Returns the
/// empty-trace document for a disabled tracer.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    let dropped = tracer
        .with_buf(|buf| {
            for (pid, name) in &buf.process_names {
                sep(&mut out);
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":"
                ));
                push_str_lit(&mut out, name);
                out.push_str("}}");
                // Stable process ordering in the viewer.
                sep(&mut out);
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{pid}}}}}"
                ));
            }
            for ((pid, tid), name) in &buf.lane_names {
                sep(&mut out);
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
                ));
                push_str_lit(&mut out, name);
                out.push_str("}}");
                sep(&mut out);
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}}}"
                ));
            }
            for e in &buf.events {
                sep(&mut out);
                let ph = match e.ph {
                    Ph::Complete => "X",
                    Ph::Instant => "i",
                    Ph::Counter => "C",
                };
                out.push_str(&format!(
                    "{{\"ph\":\"{ph}\",\"pid\":{},\"tid\":{},\"cat\":\"{}\",\"name\":",
                    e.pid, e.tid, e.cat
                ));
                push_str_lit(&mut out, &e.name);
                out.push_str(",\"ts\":");
                push_f64(&mut out, e.ts_us);
                match e.ph {
                    Ph::Complete => {
                        out.push_str(",\"dur\":");
                        push_f64(&mut out, e.dur_us);
                    }
                    Ph::Instant => out.push_str(",\"s\":\"t\""),
                    Ph::Counter => {}
                }
                if !e.args.is_empty() {
                    out.push_str(",\"args\":");
                    push_args(&mut out, &e.args);
                }
                out.push('}');
            }
            buf.dropped
        })
        .unwrap_or(0);
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":");
    push_str_lit(&mut out, TRACE_SCHEMA);
    out.push_str(&format!(
        ",\"clock\":\"modeled\",\"droppedEvents\":{dropped}}}}}\n"
    ));
    out
}

/// Structurally validates a Chrome trace document: it must carry a
/// `traceEvents` array whose every object has the required keys `ph`,
/// `ts`, `pid`, `tid`, `name` (metadata events included). Returns the
/// number of events on success; a message naming the first offending event
/// otherwise.
///
/// This is a purpose-built scanner, not a JSON parser: it splits the
/// `traceEvents` array on top-level object boundaries (string-aware) and
/// checks each object's keys — enough to keep the exporter honest in tests
/// and CI without a serde dependency.
pub fn validate_chrome_trace(doc: &str) -> Result<usize, String> {
    let start = doc
        .find("\"traceEvents\"")
        .ok_or("missing \"traceEvents\" key")?;
    let open = doc[start..]
        .find('[')
        .ok_or("\"traceEvents\" is not an array")?
        + start;
    // Scan to the matching close bracket, tracking strings and nesting.
    let bytes = doc.as_bytes();
    let mut depth_sq = 0i32;
    let mut depth_br = 0i32;
    let mut in_str = false;
    let mut escape = false;
    let mut obj_start: Option<usize> = None;
    let mut count = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_str {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' => depth_sq += 1,
            b']' => {
                depth_sq -= 1;
                if depth_sq == 0 {
                    return Ok(count);
                }
            }
            b'{' => {
                if depth_br == 0 && depth_sq == 1 {
                    obj_start = Some(i);
                }
                depth_br += 1;
            }
            b'}' => {
                depth_br -= 1;
                if depth_br == 0 && depth_sq == 1 {
                    let obj = &doc[obj_start.ok_or("unbalanced object")?..=i];
                    for key in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"", "\"name\""] {
                        if !obj.contains(key) {
                            return Err(format!("event {count} is missing {key}: {obj}"));
                        }
                    }
                    count += 1;
                }
            }
            _ => {}
        }
    }
    Err("unterminated traceEvents array".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::lanes;

    #[test]
    fn empty_trace_is_valid() {
        let t = Tracer::enabled();
        let doc = chrome_trace_json(&t);
        assert_eq!(validate_chrome_trace(&doc), Ok(0));
        assert!(doc.contains("cusha-trace/v1"));
    }

    #[test]
    fn events_and_metadata_export_with_required_keys() {
        let t = Tracer::enabled();
        t.name_device_lanes(0, 2);
        t.complete_with(
            0,
            lanes::KERNEL,
            "kernel",
            "CuSha-CW::bfs",
            1e-3,
            2e-3,
            || {
                vec![
                    ("blocks", ArgVal::U64(4)),
                    ("gld_efficiency", ArgVal::F64(0.5)),
                ]
            },
        );
        t.instant(0, lanes::FAULT, "fault", "copy-retry", 2e-3);
        t.counter(0, lanes::ENGINE, "updated_vertices", 3e-3, 17.0);
        let doc = chrome_trace_json(&t);
        // 7 metadata (1 process + 4 role lanes + 2 SM lanes) ×2 entries
        // (name + sort index) + 3 events.
        let n = validate_chrome_trace(&doc).unwrap();
        assert_eq!(n, 17, "{doc}");
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":2000"));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"gld_efficiency\":0.5"));
        assert!(doc.contains("\"name\":\"sm1\""));
    }

    #[test]
    fn validator_flags_missing_keys() {
        let bad = "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":0}]}";
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("\"name\""), "{err}");
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn validator_survives_braces_inside_strings() {
        let doc = "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":0,\
                   \"name\":\"odd { name ] \\\" here\"}]}";
        assert_eq!(validate_chrome_trace(doc), Ok(1));
    }

    #[test]
    fn disabled_tracer_exports_empty_document() {
        let doc = chrome_trace_json(&Tracer::default());
        assert_eq!(validate_chrome_trace(&doc), Ok(0));
    }
}
