//! Synthetic surrogates for the six SNAP datasets of paper Table 1.
//!
//! The original datasets (LiveJournal, Pokec, HiggsTwitter, RoadNetCA,
//! WebGoogle, Amazon0312) are not redistributable with this repository, so
//! each is replaced by a deterministic generator configuration that matches
//! its **sparsity** (|E|/|V|) and **degree-distribution character** — the two
//! properties the paper's results depend on (Section 3.2 derives window size
//! from exactly these). Social/web graphs map to R-MAT with appropriate
//! skew; the California road network maps to a perturbed 2-D lattice.
//!
//! A `scale_divisor` shrinks |V| and |E| proportionally so that the full
//! experiment matrix runs in minutes instead of hours; sparsity is preserved
//! at every scale. `scale_divisor = 1` reproduces the full Table 1 sizes.

use crate::generators::{lattice2d, rmat, RmatConfig};
use crate::types::Graph;

/// One of the six input graphs of paper Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Directed social network; 69 M edges, 4.8 M vertices (power-law).
    LiveJournal,
    /// Directed social network; 30.6 M edges, 1.6 M vertices (power-law).
    Pokec,
    /// Twitter interaction graph; 14.9 M edges, 457 K vertices (very dense
    /// power-law).
    HiggsTwitter,
    /// California road network; 5.5 M edges, 2.0 M vertices (uniform degree,
    /// huge diameter).
    RoadNetCA,
    /// Google web graph; 5.1 M edges, 916 K vertices (power-law).
    WebGoogle,
    /// Amazon co-purchase network; 3.2 M edges, 401 K vertices (mild skew).
    Amazon0312,
}

impl Dataset {
    /// All six datasets in the paper's Table 1 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::LiveJournal,
        Dataset::Pokec,
        Dataset::HiggsTwitter,
        Dataset::RoadNetCA,
        Dataset::WebGoogle,
        Dataset::Amazon0312,
    ];

    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LiveJournal",
            Dataset::Pokec => "Pokec",
            Dataset::HiggsTwitter => "HiggsTwitter",
            Dataset::RoadNetCA => "RoadNetCA",
            Dataset::WebGoogle => "WebGoogle",
            Dataset::Amazon0312 => "Amazon0312",
        }
    }

    /// `(edges, vertices)` of the real dataset, as reported in Table 1.
    pub fn paper_size(self) -> (u64, u64) {
        match self {
            Dataset::LiveJournal => (68_993_773, 4_847_571),
            Dataset::Pokec => (30_622_564, 1_632_803),
            Dataset::HiggsTwitter => (14_855_875, 456_631),
            Dataset::RoadNetCA => (5_533_214, 1_971_281),
            Dataset::WebGoogle => (5_105_039, 916_428),
            Dataset::Amazon0312 => (3_200_440, 400_727),
        }
    }

    /// |E| / |V| of the real dataset.
    pub fn sparsity(self) -> f64 {
        let (e, v) = self.paper_size();
        e as f64 / v as f64
    }

    /// Generates the surrogate at `1 / scale_divisor` of the real size.
    ///
    /// # Panics
    /// Panics if `scale_divisor` is 0 or so large that the graph would have
    /// fewer than 2 vertices.
    pub fn generate(self, scale_divisor: u64) -> Graph {
        assert!(scale_divisor > 0, "scale divisor must be positive");
        let (_, v) = self.paper_size();
        let target_v = v / scale_divisor;
        assert!(
            target_v >= 2,
            "scale divisor {scale_divisor} leaves no graph"
        );
        let ratio = self.sparsity();
        let seed = 0xC0_5A + self as u64; // stable per-dataset seed
        match self {
            Dataset::RoadNetCA => {
                // keep * 4 ≈ in+out grid degree; solve keep for the target
                // sparsity, then add ~0.5% shortcuts for ramps/highways.
                let side = (target_v as f64).sqrt().round().max(2.0) as u32;
                let n = side as u64 * side as u64;
                let target_e = (n as f64 * ratio) as u64;
                let grid_links = 4 * n - 4 * side as u64; // directed grid slots
                let keep = (target_e as f64 * 0.995 / grid_links as f64).min(1.0);
                let shortcuts = (target_e as f64 * 0.005) as u64;
                let grid = lattice2d(side, side, keep, shortcuts, seed);
                // SNAP's road networks carry arbitrary vertex ids; the
                // row-major ids of a synthetic lattice would give shards
                // unrealistic locality (large windows), so relabel randomly.
                let perm = crate::generators::random_permutation(grid.num_vertices(), seed);
                grid.relabeled(&perm)
            }
            _ => {
                let scale = (target_v as f64).log2().round().max(1.0) as u32;
                let n = 1u64 << scale;
                let edges = (n as f64 * ratio) as u64;
                let cfg = match self {
                    // Mild-skew co-purchase network.
                    Dataset::Amazon0312 => RmatConfig::mild(scale, edges, seed),
                    // HiggsTwitter is the most hub-dominated of the six.
                    Dataset::HiggsTwitter => RmatConfig {
                        a: 0.62,
                        b: 0.18,
                        c: 0.15,
                        d: 0.05,
                        ..RmatConfig::graph500(scale, edges, seed)
                    },
                    _ => RmatConfig::graph500(scale, edges, seed),
                };
                rmat(&cfg)
            }
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{DegreeDistribution, Direction};

    const TEST_DIVISOR: u64 = 256;

    #[test]
    fn sparsity_preserved_at_scale() {
        for ds in Dataset::ALL {
            let g = ds.generate(TEST_DIVISOR);
            let got = g.avg_degree();
            let want = ds.sparsity();
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.25,
                "{ds}: sparsity {got:.2} deviates from paper {want:.2} by {:.0}%",
                rel * 100.0
            );
        }
    }

    #[test]
    fn road_network_is_flat_social_is_skewed() {
        let road = Dataset::RoadNetCA.generate(TEST_DIVISOR);
        let lj = Dataset::LiveJournal.generate(TEST_DIVISOR);
        let road_skew = DegreeDistribution::of(&road, Direction::In).skew();
        let lj_skew = DegreeDistribution::of(&lj, Direction::In).skew();
        assert!(road_skew < 3.0, "road surrogate skew {road_skew}");
        assert!(lj_skew > 4.0, "social surrogate skew {lj_skew}");
    }

    #[test]
    fn deterministic_and_distinct() {
        let a = Dataset::Pokec.generate(TEST_DIVISOR);
        let b = Dataset::Pokec.generate(TEST_DIVISOR);
        assert_eq!(a, b);
        let c = Dataset::WebGoogle.generate(TEST_DIVISOR);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_sizes_match_table1() {
        assert_eq!(Dataset::LiveJournal.paper_size(), (68_993_773, 4_847_571));
        assert_eq!(Dataset::Amazon0312.paper_size(), (3_200_440, 400_727));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_divisor_rejected() {
        Dataset::Pokec.generate(0);
    }
}
