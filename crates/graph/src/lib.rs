#![warn(missing_docs)]

//! Graph substrate for the CuSha reproduction.
//!
//! This crate provides everything the rest of the workspace needs to *obtain*
//! and *represent* graphs:
//!
//! * [`Graph`] — the canonical directed edge-list representation with raw
//!   per-edge weight seeds (each algorithm derives its own typed edge value
//!   from the seed),
//! * [`Csr`] — the in-edge Compressed Sparse Row representation described in
//!   Section 2 of the paper (`InEdgeIdxs`, `SrcIndxs` and per-edge ids),
//! * [`generators`] — RMAT, Erdős–Rényi and geometric-lattice generators,
//! * [`surrogates`] — synthetic stand-ins for the six SNAP datasets of
//!   Table 1 (see DESIGN.md for the substitution rationale),
//! * [`partition`] — edge-balanced fleet partitioning with per-device halo
//!   sets, feeding the engine's multi-GPU mode,
//! * [`degree`] — degree-distribution analysis used by Figure 1,
//! * [`io`] — text edge-list and compact binary de/serialization (binary v2
//!   carries per-section checksums so corrupt files fail typed, not silent),
//! * [`mutate`] — validated edge insert/delete batches applied as deltas,
//!   plus the structural [`fingerprint`] revision the service keys caches on,
//! * [`analysis`] — structural utilities (union-find components, etc.).

pub mod analysis;
pub mod builder;
pub mod csr;
pub mod degree;
pub mod generators;
pub mod io;
pub mod mutate;
pub mod partition;
pub mod reorder;
pub mod surrogates;
pub mod types;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use mutate::{fingerprint, Mutation, MutationBatch, MutationDelta, MutationError};
pub use partition::{edge_balanced_ranges, DevicePartition, FleetPartition};
pub use types::{Edge, EdgeId, Graph, GraphError, VertexId};
