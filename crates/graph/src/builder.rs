//! Incremental graph construction with optional cleanup passes.

use crate::types::{Edge, Graph, VertexId};

/// Builds a [`Graph`] edge by edge, tracking the vertex-id high-water mark and
/// optionally deduplicating parallel edges and dropping self-loops.
///
/// Generators and IO use this so that every `Graph` in the workspace upholds
/// the "endpoints in range" invariant by construction.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    min_vertices: u32,
    drop_self_loops: bool,
    dedup: bool,
}

impl GraphBuilder {
    /// New builder with no edges; the final vertex count is the id
    /// high-water mark unless [`GraphBuilder::reserve_vertices`] raises it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the built graph has at least `n` vertices even if the trailing
    /// ids never appear in an edge (isolated vertices are common in sparse
    /// real-world graphs and matter for shard layout).
    pub fn reserve_vertices(mut self, n: u32) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Drop `v -> v` edges during [`GraphBuilder::build`].
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Deduplicate parallel edges during [`GraphBuilder::build`], keeping the
    /// smallest weight of each `(src, dst)` pair (a natural choice for the
    /// path-style algorithms).
    pub fn dedup_parallel(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Pre-allocates space for `n` more edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Appends one edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, weight: u32) -> &mut Self {
        self.edges.push(Edge::new(src, dst, weight));
        self
    }

    /// Appends many edges.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = Edge>) -> &mut Self {
        self.edges.extend(edges);
        self
    }

    /// Number of edges currently staged (before cleanup passes).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph, applying the configured cleanup passes.
    pub fn build(self) -> Graph {
        let GraphBuilder {
            mut edges,
            min_vertices,
            drop_self_loops,
            dedup,
        } = self;
        if drop_self_loops {
            edges.retain(|e| e.src != e.dst);
        }
        if dedup {
            // Sort so equal (src, dst) pairs are adjacent with the smallest
            // weight first, then keep the first of each run.
            edges.sort_unstable_by_key(|e| (e.src, e.dst, e.weight));
            edges.dedup_by_key(|e| (e.src, e.dst));
        }
        let high_water = edges
            .iter()
            .map(|e| e.src.max(e.dst) + 1)
            .max()
            .unwrap_or(0);
        Graph::new(high_water.max(min_vertices), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_mark_sets_vertex_count() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 9, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn reserve_vertices_overrides_high_water() {
        let mut b = GraphBuilder::new().reserve_vertices(20);
        b.add_edge(0, 1, 1);
        assert_eq!(b.clone().build().num_vertices(), 20);
        // ...but the high-water mark wins when larger.
        b.add_edge(0, 30, 1);
        assert_eq!(b.build().num_vertices(), 31);
    }

    #[test]
    fn drop_self_loops_removes_loops_only() {
        let mut b = GraphBuilder::new().drop_self_loops(true);
        b.add_edge(1, 1, 1).add_edge(1, 2, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge(0), Edge::new(1, 2, 2));
    }

    #[test]
    fn dedup_keeps_min_weight() {
        let mut b = GraphBuilder::new().dedup_parallel(true);
        b.add_edge(0, 1, 7)
            .add_edge(0, 1, 3)
            .add_edge(0, 1, 9)
            .add_edge(1, 0, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.edges().contains(&Edge::new(0, 1, 3)));
        assert!(g.edges().contains(&Edge::new(1, 0, 4)));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_appends_all() {
        let mut b = GraphBuilder::new();
        b.extend([Edge::new(0, 1, 1), Edge::new(2, 3, 1)]);
        assert_eq!(b.staged_edges(), 2);
        assert_eq!(b.build().num_edges(), 2);
    }
}
