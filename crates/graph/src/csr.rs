//! In-edge Compressed Sparse Row representation (paper Section 2).
//!
//! The paper's CSR stores, for every vertex, the list of its *incoming*
//! edges: `InEdgeIdxs` delimits per-vertex sub-arrays of `SrcIndxs` (source
//! endpoints) and `EdgeValues`. We additionally keep the dense [`EdgeId`] of
//! every CSR slot so that algorithms can derive their typed edge value from
//! the raw weight seed of the original edge list.

use crate::types::{EdgeId, Graph, VertexId};

/// In-edge CSR: for vertex `v`, its incoming edges occupy CSR slots
/// `in_edge_idxs[v] .. in_edge_idxs[v + 1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    /// `n + 1` offsets into `src_indxs` / `edge_ids`; `in_edge_idxs[n] == m`.
    in_edge_idxs: Vec<u32>,
    /// For each CSR slot, the source vertex of the edge (`SrcIndxs`).
    src_indxs: Vec<VertexId>,
    /// For each CSR slot, the raw weight seed of the edge (`EdgeValues`).
    weights: Vec<u32>,
    /// For each CSR slot, the id of the edge in the original edge list.
    edge_ids: Vec<EdgeId>,
    num_vertices: u32,
}

impl Csr {
    /// Builds the in-edge CSR from an edge list with a counting sort
    /// (O(|V| + |E|)). Incoming edges of a vertex keep the relative order
    /// they had in the edge list (the sort is stable).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices() as usize;
        let m = g.num_edges() as usize;
        let mut counts = vec![0u32; n + 1];
        for e in g.edges() {
            counts[e.dst as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let in_edge_idxs = counts.clone();
        let mut src_indxs = vec![0u32; m];
        let mut weights = vec![0u32; m];
        let mut edge_ids = vec![0u32; m];
        let mut cursor = counts;
        for (id, e) in g.edges().iter().enumerate() {
            let slot = cursor[e.dst as usize] as usize;
            cursor[e.dst as usize] += 1;
            src_indxs[slot] = e.src;
            weights[slot] = e.weight;
            edge_ids[slot] = id as u32;
        }
        Csr {
            in_edge_idxs,
            src_indxs,
            weights,
            edge_ids,
            num_vertices: g.num_vertices(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> u32 {
        self.src_indxs.len() as u32
    }

    /// The `InEdgeIdxs` offsets array (`n + 1` entries).
    #[inline]
    pub fn in_edge_idxs(&self) -> &[u32] {
        &self.in_edge_idxs
    }

    /// The `SrcIndxs` array (`m` entries).
    #[inline]
    pub fn src_indxs(&self) -> &[VertexId] {
        &self.src_indxs
    }

    /// Per-slot raw weight seeds (`EdgeValues` in the paper).
    #[inline]
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Per-slot original edge ids.
    #[inline]
    pub fn edge_ids(&self) -> &[EdgeId] {
        &self.edge_ids
    }

    /// CSR slot range of vertex `v`'s incoming edges.
    #[inline]
    pub fn in_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.in_edge_idxs[v as usize] as usize..self.in_edge_idxs[v as usize + 1] as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_edge_idxs[v as usize + 1] - self.in_edge_idxs[v as usize]
    }

    /// Iterates over `(source, weight)` for every incoming edge of `v`.
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let r = self.in_range(v);
        self.src_indxs[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Bytes occupied by the CSR arrays themselves, as accounted by the
    /// paper's Figure 9 comparison: `VertexValues` (`n * vertex_size`) +
    /// `InEdgeIdxs` (`(n + 1) * 4`) + `SrcIndxs` (`m * 4`) + `EdgeValues`
    /// (`m * edge_size`).
    pub fn footprint_bytes(&self, vertex_size: usize, edge_size: usize) -> usize {
        let n = self.num_vertices as usize;
        let m = self.src_indxs.len();
        n * vertex_size + (n + 1) * 4 + m * 4 + m * edge_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    /// The example graph of paper Figure 2(a): 8 vertices, edges as drawn.
    /// We only need *a* fixed small graph; this one exercises shared
    /// destinations and empty in-lists.
    fn fig2_like() -> Graph {
        Graph::new(
            8,
            vec![
                Edge::new(1, 2, 10),
                Edge::new(7, 2, 11),
                Edge::new(0, 1, 12),
                Edge::new(3, 0, 13),
                Edge::new(5, 4, 14),
                Edge::new(6, 4, 15),
                Edge::new(2, 7, 16),
                Edge::new(4, 7, 17),
                Edge::new(0, 5, 18),
            ],
        )
    }

    #[test]
    fn offsets_are_monotone_and_complete() {
        let g = fig2_like();
        let c = Csr::from_graph(&g);
        assert_eq!(c.in_edge_idxs().len(), 9);
        assert_eq!(*c.in_edge_idxs().last().unwrap(), g.num_edges());
        assert!(c.in_edge_idxs().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn neighborhoods_match_edge_list() {
        let g = fig2_like();
        let c = Csr::from_graph(&g);
        let nbrs: Vec<_> = c.in_neighbors(2).collect();
        assert_eq!(nbrs, vec![(1, 10), (7, 11)]);
        let nbrs7: Vec<_> = c.in_neighbors(7).collect();
        assert_eq!(nbrs7, vec![(2, 16), (4, 17)]);
        assert_eq!(c.in_degree(3), 0);
        assert_eq!(c.in_neighbors(3).count(), 0);
    }

    #[test]
    fn edge_ids_round_trip_to_original_edges() {
        let g = fig2_like();
        let c = Csr::from_graph(&g);
        for v in 0..g.num_vertices() {
            for slot in c.in_range(v) {
                let e = g.edge(c.edge_ids()[slot]);
                assert_eq!(e.dst, v);
                assert_eq!(e.src, c.src_indxs()[slot]);
                assert_eq!(e.weight, c.weights()[slot]);
            }
        }
    }

    #[test]
    fn in_degrees_sum_to_edge_count() {
        let g = fig2_like();
        let c = Csr::from_graph(&g);
        let sum: u32 = (0..g.num_vertices()).map(|v| c.in_degree(v)).sum();
        assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn empty_graph_csr() {
        let c = Csr::from_graph(&Graph::empty(3));
        assert_eq!(c.in_edge_idxs(), &[0, 0, 0, 0]);
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn stability_preserves_edge_list_order() {
        let g = Graph::new(
            2,
            vec![Edge::new(0, 1, 1), Edge::new(0, 1, 2), Edge::new(0, 1, 3)],
        );
        let c = Csr::from_graph(&g);
        assert_eq!(c.weights(), &[1, 2, 3]);
        assert_eq!(c.edge_ids(), &[0, 1, 2]);
    }

    #[test]
    fn footprint_formula() {
        let g = fig2_like();
        let c = Csr::from_graph(&g);
        // n=8, m=9, vertex 4B, edge 4B: 32 + 36 + 36 + 36 = 140.
        assert_eq!(c.footprint_bytes(4, 4), 140);
        // Edge-less value type (BFS): edge_size = 0.
        assert_eq!(c.footprint_bytes(4, 0), 104);
    }
}
