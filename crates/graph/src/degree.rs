//! Degree-distribution analysis (paper Figure 1).
//!
//! Figure 1 plots, for every input graph, the number of vertices having each
//! degree on log-log axes. [`DegreeDistribution`] computes the exact
//! histogram plus the log-binned view used for plotting, and summary
//! statistics that the surrogate generators are validated against.

use crate::types::Graph;

/// Which endpoint's degree to analyse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// In-degree (edges arriving at the vertex) — what shard sizes depend on.
    In,
    /// Out-degree (edges leaving the vertex).
    Out,
}

/// Exact and log-binned degree histogram of a graph.
#[derive(Clone, Debug)]
pub struct DegreeDistribution {
    /// `counts[d]` = number of vertices with degree exactly `d`.
    pub counts: Vec<u64>,
    /// Largest observed degree.
    pub max_degree: u32,
    /// Mean degree.
    pub mean: f64,
    /// Number of vertices with degree zero.
    pub isolated: u64,
}

impl DegreeDistribution {
    /// Computes the distribution of `dir`-degrees of `g`.
    pub fn of(g: &Graph, dir: Direction) -> Self {
        let degrees = match dir {
            Direction::In => g.in_degrees(),
            Direction::Out => g.out_degrees(),
        };
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mut counts = vec![0u64; max_degree as usize + 1];
        for &d in &degrees {
            counts[d as usize] += 1;
        }
        let mean = if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64
        };
        let isolated = counts[0];
        DegreeDistribution {
            counts,
            max_degree,
            mean,
            isolated,
        }
    }

    /// Log₂-binned view: bin `k` covers degrees `[2^k, 2^(k+1))`, bin for
    /// degree 0 is reported separately via [`DegreeDistribution::isolated`].
    /// Returns `(bin_lower_bound, vertex_count)` pairs, skipping empty bins.
    pub fn log_binned(&self) -> Vec<(u32, u64)> {
        let mut bins: Vec<(u32, u64)> = Vec::new();
        let mut k = 0u32;
        loop {
            let lo = 1u64 << k;
            if lo > self.max_degree as u64 {
                break;
            }
            let hi = (1u64 << (k + 1)).min(self.counts.len() as u64);
            let total: u64 = self.counts[lo as usize..hi as usize].iter().sum();
            if total > 0 {
                bins.push((lo as u32, total));
            }
            k += 1;
        }
        bins
    }

    /// Complementary CDF: fraction of vertices with degree ≥ `d`.
    pub fn ccdf(&self, d: u32) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let ge: u64 = self.counts[(d as usize).min(self.counts.len())..]
            .iter()
            .sum();
        ge as f64 / total as f64
    }

    /// Crude power-law skew indicator: the 99.9th-percentile degree among
    /// vertices of non-zero degree (so isolated vertices cannot drown out
    /// the tail), divided by the overall mean degree. Social/web graphs
    /// score high; road networks near 1.
    pub fn skew(&self) -> f64 {
        let total_nz: u64 = self.counts[1..].iter().sum();
        if total_nz == 0 || self.mean == 0.0 {
            return 0.0;
        }
        let target = (total_nz as f64 * 0.999).ceil() as u64;
        let mut acc = 0u64;
        for (d, &c) in self.counts.iter().enumerate().skip(1) {
            acc += c;
            if acc >= target {
                return d as f64 / self.mean;
            }
        }
        self.max_degree as f64 / self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Edge, Graph};

    fn star(n: u32) -> Graph {
        // Vertex 0 receives an edge from every other vertex.
        let edges = (1..n).map(|v| Edge::new(v, 0, 1)).collect();
        Graph::new(n, edges)
    }

    #[test]
    fn star_in_distribution() {
        let d = DegreeDistribution::of(&star(10), Direction::In);
        assert_eq!(d.max_degree, 9);
        assert_eq!(d.counts[9], 1);
        assert_eq!(d.counts[0], 9);
        assert_eq!(d.isolated, 9);
        assert!((d.mean - 0.9).abs() < 1e-12);
    }

    #[test]
    fn star_out_distribution() {
        let d = DegreeDistribution::of(&star(10), Direction::Out);
        assert_eq!(d.max_degree, 1);
        assert_eq!(d.counts[1], 9);
        assert_eq!(d.isolated, 1);
    }

    #[test]
    fn log_binning_covers_all_nonzero_degrees() {
        let d = DegreeDistribution::of(&star(10), Direction::In);
        let bins = d.log_binned();
        let binned_total: u64 = bins.iter().map(|&(_, c)| c).sum();
        let nonzero_total: u64 = d.counts[1..].iter().sum();
        assert_eq!(binned_total, nonzero_total);
        // Degree 9 lands in the [8, 16) bin.
        assert!(bins.contains(&(8, 1)));
    }

    #[test]
    fn ccdf_monotone_and_bounded() {
        let d = DegreeDistribution::of(&star(10), Direction::In);
        assert!((d.ccdf(0) - 1.0).abs() < 1e-12);
        assert!(d.ccdf(1) <= d.ccdf(0));
        assert!((d.ccdf(10) - 0.0).abs() < 1e-12);
        assert!((d.ccdf(9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn skew_detects_hubs() {
        let hubby = DegreeDistribution::of(&star(1000), Direction::In);
        assert!(hubby.skew() > 100.0, "star should be extremely skewed");
        // A ring has uniform degree 1 => skew 1.
        let ring = Graph::new(8, (0..8).map(|v| Edge::new(v, (v + 1) % 8, 1)).collect());
        let flat = DegreeDistribution::of(&ring, Direction::In);
        assert!((flat.skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let d = DegreeDistribution::of(&Graph::empty(0), Direction::In);
        assert_eq!(d.max_degree, 0);
        assert_eq!(d.mean, 0.0);
        assert_eq!(d.ccdf(0), 0.0);
        assert!(d.log_binned().is_empty());
    }
}
