//! Vertex-reordering strategies.
//!
//! Shard window sizes — and with them G-Shards' stage-4 utilization —
//! depend on how much *id locality* a graph's labeling has: windows `W_ij`
//! collect shard `j`'s edges by source shard, so labelings that keep
//! neighbourhoods in nearby ids concentrate edges into fewer, larger
//! windows. Real datasets arrive with arbitrary ids; these strategies
//! recover locality as a preprocessing step (an extension beyond the
//! paper, which takes labelings as given).
//!
//! Each function returns a permutation `perm` with `perm[old_id] = new_id`,
//! suitable for [`crate::Graph::relabeled`].

use crate::types::{Graph, VertexId};
use std::collections::VecDeque;

/// BFS (Cuthill–McKee-flavoured) ordering: vertices are renumbered in
/// breadth-first discovery order over the symmetrized graph, restarting
/// from the lowest-id unvisited vertex per component. Neighbours end up
/// with nearby ids, maximizing window concentration.
pub fn bfs_order(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices() as usize;
    // Symmetrized adjacency (locality is direction-agnostic).
    let mut offsets = vec![0u32; n + 1];
    for e in g.edges() {
        offsets[e.src as usize + 1] += 1;
        offsets[e.dst as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut adj = vec![0u32; 2 * g.num_edges() as usize];
    let mut cursor = offsets.clone();
    for e in g.edges() {
        adj[cursor[e.src as usize] as usize] = e.dst;
        cursor[e.src as usize] += 1;
        adj[cursor[e.dst as usize] as usize] = e.src;
        cursor[e.dst as usize] += 1;
    }
    let mut perm = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for root in 0..n as u32 {
        if perm[root as usize] != u32::MAX {
            continue;
        }
        perm[root as usize] = next;
        next += 1;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for i in offsets[v as usize]..offsets[v as usize + 1] {
                let u = adj[i as usize];
                if perm[u as usize] == u32::MAX {
                    perm[u as usize] = next;
                    next += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    perm
}

/// Degree-descending ordering: hubs get the lowest ids. Packs the heavy
/// rows together, which concentrates the windows fed by hubs.
pub fn degree_order(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices() as usize;
    let in_deg = g.in_degrees();
    let out_deg = g.out_degrees();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| {
        std::cmp::Reverse(in_deg[v as usize] as u64 + out_deg[v as usize] as u64)
    });
    let mut perm = vec![0u32; n];
    for (new_id, &old_id) in by_degree.iter().enumerate() {
        perm[old_id as usize] = new_id as u32;
    }
    perm
}

/// Mean absolute id distance across edges — the locality metric the
/// orderings optimize (lower = more window concentration).
pub fn edge_locality(g: &Graph) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let sum: u64 = g
        .edges()
        .iter()
        .map(|e| (e.src as i64 - e.dst as i64).unsigned_abs())
        .sum();
    sum as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{lattice2d, random_permutation};

    fn is_permutation(perm: &[u32]) -> bool {
        let mut seen = vec![false; perm.len()];
        perm.iter()
            .all(|&p| (p as usize) < perm.len() && !std::mem::replace(&mut seen[p as usize], true))
    }

    #[test]
    fn bfs_order_is_a_permutation_covering_all_components() {
        let g = lattice2d(10, 10, 0.6, 0, 1); // likely disconnected
        let perm = bfs_order(&g);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn bfs_order_recovers_locality_of_a_shuffled_lattice() {
        let lattice = lattice2d(40, 40, 1.0, 0, 2);
        let shuffled = lattice.relabeled(&random_permutation(1600, 3));
        let recovered = shuffled.relabeled(&bfs_order(&shuffled));
        let before = edge_locality(&shuffled);
        let after = edge_locality(&recovered);
        assert!(
            after * 5.0 < before,
            "BFS order should shrink edge span: {before:.1} -> {after:.1}"
        );
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = crate::generators::barabasi_albert(500, 3, 4);
        let perm = degree_order(&g);
        assert!(is_permutation(&perm));
        let relabeled = g.relabeled(&perm);
        let d = relabeled.in_degrees();
        // Total degree is non-increasing-ish: the top id has the max.
        let total: Vec<u64> = {
            let out = relabeled.out_degrees();
            d.iter()
                .zip(out)
                .map(|(&i, o)| i as u64 + o as u64)
                .collect()
        };
        let max = *total.iter().max().unwrap();
        assert_eq!(total[0], max);
        assert!(total[0] >= total[total.len() - 1]);
    }

    #[test]
    fn locality_metric_basics() {
        use crate::types::{Edge, Graph};
        let tight = Graph::new(4, vec![Edge::new(0, 1, 1), Edge::new(2, 3, 1)]);
        let loose = Graph::new(4, vec![Edge::new(0, 3, 1), Edge::new(1, 3, 1)]);
        assert!(edge_locality(&tight) < edge_locality(&loose));
        assert_eq!(edge_locality(&Graph::empty(5)), 0.0);
    }
}
