//! Canonical directed graph types.
//!
//! The workspace uses 32-bit vertex and edge identifiers throughout: the
//! largest graph in the paper (LiveJournal) has 69 M edges and 4.8 M
//! vertices, comfortably within `u32` range, and halving index width is a
//! first-order memory-bandwidth win on both the real GPU and our simulator.

/// Index of a vertex. Dense in `0..graph.num_vertices()`.
pub type VertexId = u32;

/// Index of an edge. Dense in `0..graph.num_edges()`; used to look up the raw
/// weight seed of an edge regardless of the representation it is stored in.
pub type EdgeId = u32;

/// A directed edge `src -> dst` carrying a raw weight seed.
///
/// Algorithms derive their typed edge value from `weight` (e.g. SSSP uses it
/// directly as a `u32` distance, NN maps it into a small float). Unweighted
/// algorithms (BFS, CC, PR) ignore it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Raw weight seed, typically in `1..=64`.
    pub weight: u32,
}

impl Edge {
    /// Convenience constructor.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId, weight: u32) -> Self {
        Edge { src, dst, weight }
    }
}

/// A structural defect found by [`Graph::validate`] / [`Graph::try_new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex `>= num_vertices`.
    EdgeOutOfRange {
        /// Index of the offending edge in the edge list.
        index: usize,
        /// The offending edge.
        edge: Edge,
        /// The graph's vertex count.
        num_vertices: u32,
    },
    /// The edge list does not fit the 32-bit [`EdgeId`] space.
    TooManyEdges {
        /// Actual edge count.
        count: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EdgeOutOfRange {
                index,
                edge,
                num_vertices,
            } => write!(
                f,
                "edge #{index} ({} -> {}) out of range for {num_vertices} vertices",
                edge.src, edge.dst
            ),
            GraphError::TooManyEdges { count } => {
                write!(f, "{count} edges exceed the 32-bit edge-id space")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed graph stored as a flat edge list.
///
/// This is the interchange format: generators produce it, representations
/// ([`crate::Csr`], G-Shards, Concatenated Windows) are built from it, and IO
/// reads/writes it. Vertex ids must be `< num_vertices`; this is enforced by
/// [`Graph::new`] / [`Graph::try_new`] and preserved by all constructors in
/// this crate. Weights are raw `u32` seeds, so non-finite values are
/// unrepresentable by construction; algorithms that derive floats from the
/// seed map it through finite-preserving transforms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    num_vertices: u32,
    edges: Vec<Edge>,
}

/// Checks the invariants [`Graph`] maintains over raw parts.
fn check_parts(num_vertices: u32, edges: &[Edge]) -> Result<(), GraphError> {
    if edges.len() > EdgeId::MAX as usize {
        return Err(GraphError::TooManyEdges { count: edges.len() });
    }
    for (index, e) in edges.iter().enumerate() {
        if e.src >= num_vertices || e.dst >= num_vertices {
            return Err(GraphError::EdgeOutOfRange {
                index,
                edge: *e,
                num_vertices,
            });
        }
    }
    Ok(())
}

impl Graph {
    /// Builds a graph from parts, validating that every endpoint is in range.
    ///
    /// # Panics
    /// Panics if any edge references a vertex `>= num_vertices`. Fallible
    /// callers (file loaders, user-supplied inputs) use [`Graph::try_new`].
    pub fn new(num_vertices: u32, edges: Vec<Edge>) -> Self {
        Graph::try_new(num_vertices, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a graph from parts, returning the first structural defect
    /// instead of panicking.
    pub fn try_new(num_vertices: u32, edges: Vec<Edge>) -> Result<Self, GraphError> {
        check_parts(num_vertices, &edges)?;
        Ok(Graph {
            num_vertices,
            edges,
        })
    }

    /// Re-checks the graph's invariants (endpoints in range, edge count
    /// within [`EdgeId`]). Always `Ok` for graphs built through this
    /// crate's constructors; engines call it to reject hand-assembled or
    /// deserialized inputs before touching the device.
    pub fn validate(&self) -> Result<(), GraphError> {
        check_parts(self.num_vertices, &self.edges)
    }

    /// An empty graph over `num_vertices` isolated vertices.
    pub fn empty(num_vertices: u32) -> Self {
        Graph {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Number of vertices, `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges, `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u32 {
        self.edges.len() as u32
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge lookup by dense [`EdgeId`].
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id as usize]
    }

    /// Average degree `|E| / |V|` (0.0 for the empty vertex set).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }

    /// Out-degree of every vertex. Used as the `StaticVertex` input of
    /// PageRank (`NbrsNum` in Table 3 of the paper).
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            d[e.src as usize] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            d[e.dst as usize] += 1;
        }
        d
    }

    /// Consumes the graph, returning its parts.
    pub fn into_parts(self) -> (u32, Vec<Edge>) {
        (self.num_vertices, self.edges)
    }

    /// Returns a copy with every edge reversed (`u -> v` becomes `v -> u`).
    /// Weights and edge order are preserved.
    pub fn reversed(&self) -> Graph {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge::new(e.dst, e.src, e.weight))
            .collect();
        Graph {
            num_vertices: self.num_vertices,
            edges,
        }
    }

    /// Returns a copy with vertex ids renamed through `perm` (vertex `v`
    /// becomes `perm[v]`). Edge order and weights are preserved.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..num_vertices`.
    pub fn relabeled(&self, perm: &[VertexId]) -> Graph {
        assert_eq!(perm.len(), self.num_vertices as usize, "permutation length");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(
                (p as usize) < perm.len() && !std::mem::replace(&mut seen[p as usize], true),
                "not a permutation"
            );
        }
        let edges = self
            .edges
            .iter()
            .map(|e| Edge::new(perm[e.src as usize], perm[e.dst as usize], e.weight))
            .collect();
        Graph {
            num_vertices: self.num_vertices,
            edges,
        }
    }

    /// Returns a copy where for every edge `u -> v` the edge `v -> u` is also
    /// present (weights duplicated). Self-loops are not duplicated. The result
    /// may contain parallel edges if the input already had both directions.
    pub fn symmetrized(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            edges.push(*e);
            if e.src != e.dst {
                edges.push(Edge::new(e.dst, e.src, e.weight));
            }
        }
        Graph {
            num_vertices: self.num_vertices,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::new(
            4,
            vec![Edge::new(0, 1, 5), Edge::new(1, 2, 3), Edge::new(3, 3, 1)],
        )
    }

    #[test]
    fn basic_accessors() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge(1), Edge::new(1, 2, 3));
        assert!((g.avg_degree() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.out_degrees(), vec![1, 1, 0, 1]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        Graph::new(2, vec![Edge::new(0, 2, 1)]);
    }

    #[test]
    fn try_new_reports_the_offending_edge() {
        let err = Graph::try_new(2, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::EdgeOutOfRange {
                index: 1,
                edge: Edge::new(1, 2, 1),
                num_vertices: 2
            }
        );
        assert!(err.to_string().contains("edge #1"));
    }

    #[test]
    fn validate_accepts_constructed_graphs() {
        assert_eq!(sample().validate(), Ok(()));
        assert_eq!(Graph::empty(0).validate(), Ok(()));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(7);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        let z = Graph::empty(0);
        assert_eq!(z.avg_degree(), 0.0);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let g = sample().reversed();
        assert_eq!(g.edge(0), Edge::new(1, 0, 5));
        assert_eq!(g.edge(2), Edge::new(3, 3, 1));
    }

    #[test]
    fn symmetrized_adds_back_edges_once() {
        let g = sample().symmetrized();
        // 2 non-loop edges duplicated + 1 self-loop kept single.
        assert_eq!(g.num_edges(), 5);
        assert!(g.edges().contains(&Edge::new(2, 1, 3)));
        assert_eq!(
            g.edges()
                .iter()
                .filter(|e| e.src == 3 && e.dst == 3)
                .count(),
            1
        );
    }
}
