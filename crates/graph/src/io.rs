//! Graph de/serialization.
//!
//! Two formats:
//!
//! * **Text edge list** — the SNAP interchange format the paper's inputs ship
//!   in: one `src dst [weight]` triple per line, `#`-prefixed comment lines
//!   ignored. A missing weight defaults to 1.
//! * **Binary** — a compact little-endian format (`CUSH` magic, version,
//!   counts, then packed `(src, dst, weight)` triples) for fast reloads of
//!   generated surrogates. Version 2 (the write format) appends an FNV-1a
//!   checksum to the header section and to the edge payload and requires
//!   the file to end exactly after the payload checksum, so truncated or
//!   bit-rotted files fail with a typed [`IoError::Corrupt`] instead of
//!   silently building a wrong graph. Version 1 files remain readable.

use crate::builder::GraphBuilder;
use crate::types::{Edge, Graph};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CUSH";
/// The version written by [`write_binary`]. [`read_binary`] also accepts
/// the checksum-less v1.
const VERSION: u32 = 2;

/// Errors produced by graph IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Malformed input; the string describes line/offset and cause.
    Parse(String),
    /// A binary v2 file failed a section checksum, ended early, or carries
    /// trailing bytes — the payload does not match what was written.
    Corrupt(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
            IoError::Corrupt(m) => write!(f, "corrupt input: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// FNV-1a over raw bytes — the per-section digest of the binary v2 format
/// (the same constants the engine's integrity scrubber uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Parses a text edge list from a reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u32, IoError> {
            tok.ok_or_else(|| IoError::Parse(format!("line {}: missing {what}", lineno + 1)))?
                .parse::<u32>()
                .map_err(|e| IoError::Parse(format!("line {}: bad {what}: {e}", lineno + 1)))
        };
        let src = parse(it.next(), "source")?;
        let dst = parse(it.next(), "destination")?;
        let weight = match it.next() {
            Some(tok) => tok
                .parse::<u32>()
                .map_err(|e| IoError::Parse(format!("line {}: bad weight: {e}", lineno + 1)))?,
            None => 1,
        };
        if it.next().is_some() {
            return Err(IoError::Parse(format!(
                "line {}: trailing tokens",
                lineno + 1
            )));
        }
        builder.add_edge(src, dst, weight);
    }
    Ok(builder.build())
}

/// Writes a text edge list (with weights) to a writer.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# cusha edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a text edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Saves a text edge list to a file path.
pub fn save_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Writes the compact binary format (v2: checksummed sections).
///
/// Layout: `CUSH` magic, version, then the header section (`n`, `m`,
/// FNV-1a of those 8 bytes) and the payload section (`m` packed
/// `(src, dst, weight)` records, FNV-1a of all payload bytes). Nothing
/// may follow the payload checksum.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&g.num_vertices().to_le_bytes());
    header[4..].copy_from_slice(&g.num_edges().to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&fnv1a(&header).to_le_bytes())?;
    let mut crc = 0xcbf2_9ce4_8422_2325u64;
    for e in g.edges() {
        let mut record = [0u8; EDGE_RECORD_BYTES];
        record[..4].copy_from_slice(&e.src.to_le_bytes());
        record[4..8].copy_from_slice(&e.dst.to_le_bytes());
        record[8..].copy_from_slice(&e.weight.to_le_bytes());
        for &b in &record {
            crc = (crc ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        w.write_all(&record)?;
    }
    w.write_all(&crc.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Bytes per serialized edge record: `(src, dst, weight)` as `u32` each.
const EDGE_RECORD_BYTES: usize = 12;

/// Upper bound on the edge capacity reserved up front from an untrusted
/// header (16 MiB of records). A header claiming more edges than this gets
/// its vector grown incrementally instead, so a corrupt or hostile `m`
/// cannot force a multi-gigabyte allocation before the payload proves it is
/// actually that long.
const MAX_TRUSTED_CAPACITY: usize = (16 << 20) / EDGE_RECORD_BYTES;

/// Reads the compact binary format (v1 or v2).
///
/// The header's claimed counts are treated as untrusted: the edge vector's
/// up-front reservation is capped (a corrupt `m` cannot trigger an
/// allocation the payload never backs), and a payload shorter than `m`
/// records yields a typed error naming the truncation point rather than a
/// bare EOF. For v2 files the header and payload checksums are verified
/// and the file must end exactly after the payload checksum; any mismatch,
/// short section, or trailing byte is [`IoError::Corrupt`]. v1 files carry
/// no checksums, so only structural defects are detectable there
/// ([`IoError::Parse`], the historical behavior).
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| truncated("magic", e))?;
    if &magic != MAGIC {
        return Err(IoError::Parse("bad magic".into()));
    }
    let mut buf4 = [0u8; 4];
    let mut read_u32 = |r: &mut BufReader<R>, what: &str| -> Result<u32, IoError> {
        r.read_exact(&mut buf4).map_err(|e| truncated(what, e))?;
        Ok(u32::from_le_bytes(buf4))
    };
    let version = read_u32(&mut r, "version")?;
    if version != 1 && version != VERSION {
        return Err(IoError::Parse(format!("unsupported version {version}")));
    }
    let checked = version >= 2;
    // In a checksummed file a short read means the file was cut after the
    // writer started — corruption, not a parse-shaped input.
    let short = |what: &str, e: io::Error| -> IoError {
        if checked && e.kind() == io::ErrorKind::UnexpectedEof {
            IoError::Corrupt(format!("truncated input while reading {what}"))
        } else {
            truncated(what, e)
        }
    };
    let mut header = [0u8; 8];
    r.read_exact(&mut header)
        .map_err(|e| short("header counts", e))?;
    let n = u32::from_le_bytes(header[..4].try_into().unwrap());
    let m = u32::from_le_bytes(header[4..].try_into().unwrap());
    if checked {
        let mut crc = [0u8; 8];
        r.read_exact(&mut crc)
            .map_err(|e| short("header checksum", e))?;
        if u64::from_le_bytes(crc) != fnv1a(&header) {
            return Err(IoError::Corrupt(
                "header checksum mismatch (vertex/edge counts are damaged)".into(),
            ));
        }
    }
    let mut edges = Vec::with_capacity((m as usize).min(MAX_TRUSTED_CAPACITY));
    let mut payload_crc = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..m {
        let mut record = [0u8; EDGE_RECORD_BYTES];
        r.read_exact(&mut record)
            .map_err(|e| short(&format!("edge #{i} of {m} claimed by the header"), e))?;
        for &b in &record {
            payload_crc = (payload_crc ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        let word = |k: usize| u32::from_le_bytes(record[4 * k..4 * k + 4].try_into().unwrap());
        let (src, dst, weight) = (word(0), word(1), word(2));
        if src >= n || dst >= n {
            let msg = format!("edge #{i} ({src} -> {dst}) out of range for {n} vertices");
            // Under v2 an out-of-range edge is indistinguishable from bit
            // rot until the payload checksum settles it; report it as the
            // corruption it almost certainly is.
            return Err(if checked {
                IoError::Corrupt(msg)
            } else {
                IoError::Parse(msg)
            });
        }
        edges.push(Edge::new(src, dst, weight));
    }
    if checked {
        let mut crc = [0u8; 8];
        r.read_exact(&mut crc)
            .map_err(|e| short("payload checksum", e))?;
        if u64::from_le_bytes(crc) != payload_crc {
            return Err(IoError::Corrupt(format!(
                "payload checksum mismatch over {m} edge records"
            )));
        }
        // Explicit end-of-file length check: a well-formed v2 file ends
        // here; trailing bytes mean the header undercounts the payload.
        let mut one = [0u8; 1];
        match r.read_exact(&mut one) {
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {}
            Ok(()) => {
                return Err(IoError::Corrupt(
                    "trailing bytes after payload checksum (header undercounts the file)".into(),
                ))
            }
            Err(e) => return Err(IoError::Io(e)),
        }
    }
    Graph::try_new(n, edges).map_err(|e| IoError::Parse(e.to_string()))
}

/// Maps a short read to [`IoError::Parse`] (a truncated file is malformed
/// input, not an environment failure); other IO errors pass through.
fn truncated(what: &str, e: io::Error) -> IoError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        IoError::Parse(format!("truncated input while reading {what}"))
    } else {
        IoError::Io(e)
    }
}

/// Loads the compact binary format from a file path.
pub fn load_binary(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_binary(std::fs::File::open(path)?)
}

/// Saves the compact binary format to a file path.
pub fn save_binary(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_binary(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn text_round_trip() {
        let g = erdos_renyi(50, 200, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g.num_edges(), back.num_edges());
        assert_eq!(g.edges(), back.edges());
    }

    #[test]
    fn text_parses_comments_and_default_weight() {
        let input = "# header\n\n0 1\n1 2 9\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(0).weight, 1);
        assert_eq!(g.edge(1).weight, 9);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_edge_list("0 x\n".as_bytes()),
            Err(IoError::Parse(_))
        ));
        assert!(matches!(
            read_edge_list("0\n".as_bytes()),
            Err(IoError::Parse(_))
        ));
        assert!(matches!(
            read_edge_list("0 1 2 3\n".as_bytes()),
            Err(IoError::Parse(_))
        ));
    }

    #[test]
    fn binary_round_trip() {
        let g = erdos_renyi(64, 333, 4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = erdos_renyi(8, 10, 5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Parse(_))));
        // A truncated v2 payload is typed corruption, not an IO failure.
        let mut buf2 = Vec::new();
        write_binary(&g, &mut buf2).unwrap();
        buf2.truncate(buf2.len() - 10);
        match read_binary(&buf2[..]) {
            Err(IoError::Corrupt(msg)) => {
                assert!(msg.contains("truncated"), "{msg}");
                assert!(msg.contains("edge #9"), "{msg}");
            }
            other => panic!("expected Corrupt(truncated), got {other:?}"),
        }
        // Truncation inside the header is also typed corruption.
        let mut buf3 = Vec::new();
        write_binary(&g, &mut buf3).unwrap();
        buf3.truncate(10);
        assert!(matches!(read_binary(&buf3[..]), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn binary_v2_catches_single_bit_rot_everywhere() {
        let g = erdos_renyi(16, 40, 9);
        let mut clean = Vec::new();
        write_binary(&g, &mut clean).unwrap();
        // Flip one bit at every byte position past the magic; every flip
        // must surface as a typed error (version/corrupt), never a wrong
        // graph. (Magic flips are covered by the bad-magic case above.)
        for pos in 4..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 1 << (pos % 8);
            assert!(
                read_binary(&buf[..]).is_err(),
                "bit flip at byte {pos} was not detected"
            );
        }
    }

    #[test]
    fn binary_v2_rejects_trailing_bytes() {
        let g = erdos_renyi(8, 10, 5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.push(0);
        match read_binary(&buf[..]) {
            Err(IoError::Corrupt(msg)) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("expected Corrupt(trailing), got {other:?}"),
        }
    }

    /// Serializes `g` in the checksum-less v1 layout (what pre-v2 builds
    /// wrote) so compatibility stays under test without a fixture file.
    fn write_binary_v1(g: &Graph) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CUSH");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&g.num_vertices().to_le_bytes());
        buf.extend_from_slice(&g.num_edges().to_le_bytes());
        for e in g.edges() {
            buf.extend_from_slice(&e.src.to_le_bytes());
            buf.extend_from_slice(&e.dst.to_le_bytes());
            buf.extend_from_slice(&e.weight.to_le_bytes());
        }
        buf
    }

    #[test]
    fn binary_v1_files_remain_readable() {
        let g = erdos_renyi(32, 100, 11);
        let buf = write_binary_v1(&g);
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
        // v1 keeps its historical truncation behavior: Parse, not Corrupt.
        let mut cut = write_binary_v1(&g);
        cut.truncate(cut.len() - 2);
        assert!(matches!(read_binary(&cut[..]), Err(IoError::Parse(_))));
    }

    #[test]
    fn binary_header_cannot_force_huge_allocation() {
        // A header claiming u32::MAX edges backed by no payload must fail
        // with a truncation parse error without first reserving ~48 GiB.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CUSH");
        buf.extend_from_slice(&1u32.to_le_bytes()); // version
        buf.extend_from_slice(&10u32.to_le_bytes()); // n
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // m (lie)
        match read_binary(&buf[..]) {
            Err(IoError::Parse(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Parse(truncated), got {other:?}"),
        }
    }

    #[test]
    fn binary_file_round_trip_through_paths() {
        let g = erdos_renyi(30, 90, 7);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cusha-io-bin-test-{}.bin", std::process::id()));
        save_binary(&g, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_binary(dir.join("cusha-io-definitely-missing.bin")),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn file_round_trip_through_paths() {
        let g = erdos_renyi(30, 90, 6);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cusha-io-test-{}.txt", std::process::id()));
        save_edge_list(&g, &path).unwrap();
        let back = load_edge_list(&path).unwrap();
        assert_eq!(g.edges(), back.edges());
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_edge_list(dir.join("cusha-io-definitely-missing")),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn binary_rejects_out_of_range_edge() {
        let g = Graph::new(4, vec![Edge::new(0, 3, 1)]);
        // v2: patching the vertex count trips the header checksum first.
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Corrupt(_))));
        // v1 has no checksum, so the range check itself must catch it.
        let mut v1 = write_binary_v1(&g);
        v1[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(read_binary(&v1[..]), Err(IoError::Parse(_))));
    }
}
