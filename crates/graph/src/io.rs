//! Graph de/serialization.
//!
//! Two formats:
//!
//! * **Text edge list** — the SNAP interchange format the paper's inputs ship
//!   in: one `src dst [weight]` triple per line, `#`-prefixed comment lines
//!   ignored. A missing weight defaults to 1.
//! * **Binary** — a compact little-endian format (`CUSH` magic, version,
//!   counts, then packed `(src, dst, weight)` triples) for fast reloads of
//!   generated surrogates.

use crate::builder::GraphBuilder;
use crate::types::{Edge, Graph};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CUSH";
const VERSION: u32 = 1;

/// Errors produced by graph IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Malformed input; the string describes line/offset and cause.
    Parse(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Parses a text edge list from a reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, IoError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u32, IoError> {
            tok.ok_or_else(|| IoError::Parse(format!("line {}: missing {what}", lineno + 1)))?
                .parse::<u32>()
                .map_err(|e| IoError::Parse(format!("line {}: bad {what}: {e}", lineno + 1)))
        };
        let src = parse(it.next(), "source")?;
        let dst = parse(it.next(), "destination")?;
        let weight = match it.next() {
            Some(tok) => tok
                .parse::<u32>()
                .map_err(|e| IoError::Parse(format!("line {}: bad weight: {e}", lineno + 1)))?,
            None => 1,
        };
        if it.next().is_some() {
            return Err(IoError::Parse(format!(
                "line {}: trailing tokens",
                lineno + 1
            )));
        }
        builder.add_edge(src, dst, weight);
    }
    Ok(builder.build())
}

/// Writes a text edge list (with weights) to a writer.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# cusha edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.src, e.dst, e.weight)?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a text edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Saves a text edge list to a file path.
pub fn save_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Writes the compact binary format.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&g.num_vertices().to_le_bytes())?;
    w.write_all(&g.num_edges().to_le_bytes())?;
    for e in g.edges() {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Bytes per serialized edge record: `(src, dst, weight)` as `u32` each.
const EDGE_RECORD_BYTES: usize = 12;

/// Upper bound on the edge capacity reserved up front from an untrusted
/// header (16 MiB of records). A header claiming more edges than this gets
/// its vector grown incrementally instead, so a corrupt or hostile `m`
/// cannot force a multi-gigabyte allocation before the payload proves it is
/// actually that long.
const MAX_TRUSTED_CAPACITY: usize = (16 << 20) / EDGE_RECORD_BYTES;

/// Reads the compact binary format.
///
/// The header's claimed counts are treated as untrusted: the edge vector's
/// up-front reservation is capped (a corrupt `m` cannot trigger an
/// allocation the payload never backs), and a payload shorter than `m`
/// records yields [`IoError::Parse`] naming the truncation point rather
/// than a bare EOF.
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| truncated("magic", e))?;
    if &magic != MAGIC {
        return Err(IoError::Parse("bad magic".into()));
    }
    let mut buf4 = [0u8; 4];
    let mut read_u32 = |r: &mut BufReader<R>, what: &str| -> Result<u32, IoError> {
        r.read_exact(&mut buf4).map_err(|e| truncated(what, e))?;
        Ok(u32::from_le_bytes(buf4))
    };
    let version = read_u32(&mut r, "version")?;
    if version != VERSION {
        return Err(IoError::Parse(format!("unsupported version {version}")));
    }
    let n = read_u32(&mut r, "vertex count")?;
    let m = read_u32(&mut r, "edge count")?;
    let mut edges = Vec::with_capacity((m as usize).min(MAX_TRUSTED_CAPACITY));
    for i in 0..m {
        let mut record = [0u8; EDGE_RECORD_BYTES];
        r.read_exact(&mut record)
            .map_err(|e| truncated(&format!("edge #{i} of {m} claimed by the header"), e))?;
        let word = |k: usize| u32::from_le_bytes(record[4 * k..4 * k + 4].try_into().unwrap());
        let (src, dst, weight) = (word(0), word(1), word(2));
        if src >= n || dst >= n {
            return Err(IoError::Parse(format!(
                "edge #{i} ({src} -> {dst}) out of range for {n} vertices"
            )));
        }
        edges.push(Edge::new(src, dst, weight));
    }
    Graph::try_new(n, edges).map_err(|e| IoError::Parse(e.to_string()))
}

/// Maps a short read to [`IoError::Parse`] (a truncated file is malformed
/// input, not an environment failure); other IO errors pass through.
fn truncated(what: &str, e: io::Error) -> IoError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        IoError::Parse(format!("truncated input while reading {what}"))
    } else {
        IoError::Io(e)
    }
}

/// Loads the compact binary format from a file path.
pub fn load_binary(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    read_binary(std::fs::File::open(path)?)
}

/// Saves the compact binary format to a file path.
pub fn save_binary(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_binary(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn text_round_trip() {
        let g = erdos_renyi(50, 200, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g.num_edges(), back.num_edges());
        assert_eq!(g.edges(), back.edges());
    }

    #[test]
    fn text_parses_comments_and_default_weight() {
        let input = "# header\n\n0 1\n1 2 9\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(0).weight, 1);
        assert_eq!(g.edge(1).weight, 9);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            read_edge_list("0 x\n".as_bytes()),
            Err(IoError::Parse(_))
        ));
        assert!(matches!(
            read_edge_list("0\n".as_bytes()),
            Err(IoError::Parse(_))
        ));
        assert!(matches!(
            read_edge_list("0 1 2 3\n".as_bytes()),
            Err(IoError::Parse(_))
        ));
    }

    #[test]
    fn binary_round_trip() {
        let g = erdos_renyi(64, 333, 4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = erdos_renyi(8, 10, 5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Parse(_))));
        // A truncated payload is malformed input, not an IO failure.
        let mut buf2 = Vec::new();
        write_binary(&g, &mut buf2).unwrap();
        buf2.truncate(buf2.len() - 2);
        match read_binary(&buf2[..]) {
            Err(IoError::Parse(msg)) => {
                assert!(msg.contains("truncated"), "{msg}");
                assert!(msg.contains("edge #9"), "{msg}");
            }
            other => panic!("expected Parse(truncated), got {other:?}"),
        }
        // Truncation inside the header is also a parse error.
        let mut buf3 = Vec::new();
        write_binary(&g, &mut buf3).unwrap();
        buf3.truncate(10);
        assert!(matches!(read_binary(&buf3[..]), Err(IoError::Parse(_))));
    }

    #[test]
    fn binary_header_cannot_force_huge_allocation() {
        // A header claiming u32::MAX edges backed by no payload must fail
        // with a truncation parse error without first reserving ~48 GiB.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CUSH");
        buf.extend_from_slice(&1u32.to_le_bytes()); // version
        buf.extend_from_slice(&10u32.to_le_bytes()); // n
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // m (lie)
        match read_binary(&buf[..]) {
            Err(IoError::Parse(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Parse(truncated), got {other:?}"),
        }
    }

    #[test]
    fn binary_file_round_trip_through_paths() {
        let g = erdos_renyi(30, 90, 7);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cusha-io-bin-test-{}.bin", std::process::id()));
        save_binary(&g, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_binary(dir.join("cusha-io-definitely-missing.bin")),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn file_round_trip_through_paths() {
        let g = erdos_renyi(30, 90, 6);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cusha-io-test-{}.txt", std::process::id()));
        save_edge_list(&g, &path).unwrap();
        let back = load_edge_list(&path).unwrap();
        assert_eq!(g.edges(), back.edges());
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_edge_list(dir.join("cusha-io-definitely-missing")),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn binary_rejects_out_of_range_edge() {
        let g = Graph::new(4, vec![Edge::new(0, 3, 1)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Patch the vertex count down to 2 so the edge becomes invalid.
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Parse(_))));
    }
}
