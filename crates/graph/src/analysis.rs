//! Structural graph analysis utilities.
//!
//! These back the correctness oracles (e.g. weakly-connected components for
//! the CC benchmark) and the reachability-aware assertions in the
//! integration tests.

use crate::types::{Graph, VertexId};

/// Union-find (disjoint-set) structure with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: u32) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n as usize],
            components: n as usize,
        }
    }

    /// Representative of `v`'s set.
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            // Path halving.
            self.parent[v as usize] = self.parent[self.parent[v as usize] as usize];
            v = self.parent[v as usize];
        }
        v
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// Weakly-connected components: returns for every vertex the *smallest vertex
/// id in its component* — exactly the fixed point that the CC vertex program
/// of Table 3 converges to on a symmetrized graph.
pub fn weak_components(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for e in g.edges() {
        uf.union(e.src, e.dst);
    }
    // Min label per root, then per vertex.
    let mut min_label = (0..n).collect::<Vec<u32>>();
    for v in 0..n {
        let r = uf.find(v);
        if v < min_label[r as usize] {
            min_label[r as usize] = v;
        }
    }
    (0..n).map(|v| min_label[uf.find(v) as usize]).collect()
}

/// Lower-bounds the diameter of the symmetrized graph with the classic
/// double-BFS sweep: BFS from `start` to find a far vertex `u`, then BFS
/// from `u`; the largest finite level found is the estimate. Useful for
/// predicting iteration counts of the path-style benchmarks (they need
/// roughly one iteration per diameter unit at minimum).
pub fn estimate_diameter(g: &Graph, start: VertexId) -> u32 {
    fn bfs_far(adj_offsets: &[u32], adj: &[u32], n: usize, src: u32) -> (u32, u32) {
        let mut level = vec![u32::MAX; n];
        level[src as usize] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        let mut far = (src, 0u32);
        while let Some(v) = queue.pop_front() {
            let next = level[v as usize] + 1;
            for i in adj_offsets[v as usize]..adj_offsets[v as usize + 1] {
                let u = adj[i as usize];
                if level[u as usize] == u32::MAX {
                    level[u as usize] = next;
                    if next > far.1 {
                        far = (u, next);
                    }
                    queue.push_back(u);
                }
            }
        }
        far
    }
    let n = g.num_vertices() as usize;
    if n == 0 {
        return 0;
    }
    // Symmetrized adjacency.
    let mut offsets = vec![0u32; n + 1];
    for e in g.edges() {
        offsets[e.src as usize + 1] += 1;
        offsets[e.dst as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut adj = vec![0u32; 2 * g.num_edges() as usize];
    let mut cursor = offsets.clone();
    for e in g.edges() {
        adj[cursor[e.src as usize] as usize] = e.dst;
        cursor[e.src as usize] += 1;
        adj[cursor[e.dst as usize] as usize] = e.src;
        cursor[e.dst as usize] += 1;
    }
    let (far, _) = bfs_far(&offsets, &adj, n, start);
    let (_, dist) = bfs_far(&offsets, &adj, n, far);
    dist
}

/// Vertices reachable from `src` following edge direction.
pub fn reachable_from(g: &Graph, src: VertexId) -> Vec<bool> {
    let n = g.num_vertices() as usize;
    // Forward adjacency.
    let mut offsets = vec![0u32; n + 1];
    for e in g.edges() {
        offsets[e.src as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut adj = vec![0u32; g.num_edges() as usize];
    let mut cursor = offsets.clone();
    for e in g.edges() {
        adj[cursor[e.src as usize] as usize] = e.dst;
        cursor[e.src as usize] += 1;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![src];
    seen[src as usize] = true;
    while let Some(v) = stack.pop() {
        for i in offsets[v as usize]..offsets[v as usize + 1] {
            let u = adj[i as usize];
            if !seen[u as usize] {
                seen[u as usize] = true;
                stack.push(u);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn two_components() -> Graph {
        Graph::new(
            6,
            vec![
                Edge::new(0, 1, 1),
                Edge::new(1, 2, 1),
                Edge::new(4, 3, 1),
                Edge::new(3, 4, 1),
            ],
        )
    }

    #[test]
    fn union_find_counts_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.find(2), uf.find(0));
        assert_ne!(uf.find(3), uf.find(0));
    }

    #[test]
    fn weak_components_min_labels() {
        let labels = weak_components(&two_components());
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn weak_components_ignores_direction() {
        // 2 -> 1 -> 0 chain: all in the component labeled 0.
        let g = Graph::new(3, vec![Edge::new(2, 1, 1), Edge::new(1, 0, 1)]);
        assert_eq!(weak_components(&g), vec![0, 0, 0]);
    }

    #[test]
    fn reachability_follows_direction() {
        let g = two_components();
        let seen = reachable_from(&g, 0);
        assert_eq!(seen, vec![true, true, true, false, false, false]);
        let seen1 = reachable_from(&g, 1);
        assert!(!seen1[0]);
        assert!(seen1[2]);
    }

    #[test]
    fn diameter_of_a_path_graph() {
        // 0 - 1 - ... - 9: diameter 9, found from any start.
        let g = Graph::new(10, (0..9).map(|v| Edge::new(v, v + 1, 1)).collect());
        assert_eq!(estimate_diameter(&g, 0), 9);
        assert_eq!(estimate_diameter(&g, 5), 9);
    }

    #[test]
    fn diameter_of_star_and_empty() {
        let g = Graph::new(6, (1..6).map(|v| Edge::new(0, v, 1)).collect());
        assert_eq!(estimate_diameter(&g, 0), 2);
        assert_eq!(estimate_diameter(&Graph::empty(0), 0), 0);
        assert_eq!(estimate_diameter(&Graph::empty(3), 1), 0);
    }

    #[test]
    fn reachability_with_cycle() {
        let g = Graph::new(3, vec![Edge::new(0, 1, 1), Edge::new(1, 0, 1)]);
        let seen = reachable_from(&g, 0);
        assert_eq!(seen, vec![true, true, false]);
    }
}
