//! Live graph mutation: validated edge insert/delete batches applied as
//! deltas to the canonical edge list.
//!
//! The shard layouts (G-Shards/CW) are built from a [`Graph`] and assumed
//! immutable for the duration of a run; a resident service that accepts
//! edge mutations therefore mutates the *graph* here and rebuilds (or
//! lazily re-derives) its prepared layouts per committed batch. A batch is
//! all-or-nothing: [`MutationBatch::validate`] rejects the whole batch
//! before any edge is touched, so a half-applied batch is unrepresentable
//! in memory — and the WAL layer in `cusha-serve` makes it unrepresentable
//! across a crash.
//!
//! Revisioning: [`fingerprint`] is the structural FNV-1a digest of the
//! graph (vertex count + every edge in order) used as the `graph_rev`
//! component of result-cache keys. It is a pure function of graph content,
//! so a revision recovered by WAL replay after a crash is bit-identical to
//! the revision of a from-scratch rebuild that applied the same committed
//! prefix — the property the crash-injection harness asserts.

use crate::types::{Edge, Graph, VertexId};

/// One edge-level mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the directed edge `src -> dst` with the given weight seed.
    /// Endpoints may name vertices beyond the current vertex count; the
    /// batch then grows the vertex set (isolated ids in between included).
    Insert {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Raw weight seed.
        weight: u32,
    },
    /// Delete every parallel copy of the directed edge `src -> dst`.
    Delete {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
}

/// Why a batch was rejected (nothing was applied).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// The batch contains no operations.
    EmptyBatch,
    /// A delete names an edge that does not exist at its point in the
    /// batch (deletes are checked against the graph plus the batch's own
    /// earlier inserts/deletes).
    MissingEdge {
        /// Index of the offending operation within the batch.
        index: usize,
        /// Source vertex of the missing edge.
        src: VertexId,
        /// Destination vertex of the missing edge.
        dst: VertexId,
    },
    /// Applying the batch would push the edge list past the 32-bit
    /// [`crate::EdgeId`] space.
    TooManyEdges {
        /// Edge count the batch would produce.
        count: u64,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::EmptyBatch => write!(f, "empty mutation batch"),
            MutationError::MissingEdge { index, src, dst } => {
                write!(f, "op #{index}: delete of missing edge {src} -> {dst}")
            }
            MutationError::TooManyEdges { count } => {
                write!(
                    f,
                    "batch would grow the graph to {count} edges, past the 32-bit edge-id space"
                )
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// What applying a batch changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationDelta {
    /// Edges inserted.
    pub inserted: u32,
    /// Edge copies removed (a delete removes every parallel copy).
    pub deleted: u32,
    /// Vertices the graph grew by (0 when no insert named a new id).
    pub grew_vertices: u32,
}

/// An ordered, all-or-nothing set of edge mutations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutationBatch {
    /// The operations, applied in order.
    pub ops: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty batch (invalid to apply until ops are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insert.
    pub fn insert(mut self, src: VertexId, dst: VertexId, weight: u32) -> Self {
        self.ops.push(Mutation::Insert { src, dst, weight });
        self
    }

    /// Appends a delete.
    pub fn delete(mut self, src: VertexId, dst: VertexId) -> Self {
        self.ops.push(Mutation::Delete { src, dst });
        self
    }

    /// Checks the whole batch against `graph` without touching it.
    ///
    /// Deletes are resolved in batch order against the graph *plus* the
    /// batch's earlier operations, so `insert a->b; delete a->b` is valid
    /// and `delete x->y; delete x->y` is not (the first delete removes
    /// every parallel copy).
    pub fn validate(&self, graph: &Graph) -> Result<MutationDelta, MutationError> {
        if self.ops.is_empty() {
            return Err(MutationError::EmptyBatch);
        }
        // Net multiplicity of each (src, dst) pair the batch touches,
        // seeded from the graph lazily on first touch.
        let mut touched: std::collections::HashMap<(u32, u32), i64> =
            std::collections::HashMap::new();
        let count_in_graph = |src: u32, dst: u32| -> i64 {
            graph
                .edges()
                .iter()
                .filter(|e| e.src == src && e.dst == dst)
                .count() as i64
        };
        let mut edge_count = graph.num_edges() as i64;
        let mut max_vertex = graph.num_vertices() as i64 - 1;
        for (index, op) in self.ops.iter().enumerate() {
            match *op {
                Mutation::Insert { src, dst, .. } => {
                    let m = touched
                        .entry((src, dst))
                        .or_insert_with(|| count_in_graph(src, dst));
                    *m += 1;
                    edge_count += 1;
                    max_vertex = max_vertex.max(src as i64).max(dst as i64);
                }
                Mutation::Delete { src, dst } => {
                    let m = touched
                        .entry((src, dst))
                        .or_insert_with(|| count_in_graph(src, dst));
                    if *m <= 0 {
                        return Err(MutationError::MissingEdge { index, src, dst });
                    }
                    edge_count -= *m;
                    *m = 0;
                }
            }
        }
        if edge_count > crate::EdgeId::MAX as i64 {
            return Err(MutationError::TooManyEdges {
                count: edge_count as u64,
            });
        }
        let grew = (max_vertex + 1 - graph.num_vertices() as i64).max(0) as u32;
        Ok(MutationDelta {
            inserted: self
                .ops
                .iter()
                .filter(|o| matches!(o, Mutation::Insert { .. }))
                .count() as u32,
            deleted: 0, // exact deleted-copy count is known only at apply
            grew_vertices: grew,
        })
    }

    /// Validates, then applies the batch to `graph` in order, returning
    /// the realized delta. On `Err` the graph is untouched.
    pub fn apply(&self, graph: &mut Graph) -> Result<MutationDelta, MutationError> {
        self.validate(graph)?;
        let (mut n, mut edges) = std::mem::take(graph).into_parts();
        let mut delta = MutationDelta::default();
        for op in &self.ops {
            match *op {
                Mutation::Insert { src, dst, weight } => {
                    let needed = src.max(dst).saturating_add(1);
                    if needed > n {
                        delta.grew_vertices += needed - n;
                        n = needed;
                    }
                    edges.push(Edge::new(src, dst, weight));
                    delta.inserted += 1;
                }
                Mutation::Delete { src, dst } => {
                    let before = edges.len();
                    edges.retain(|e| !(e.src == src && e.dst == dst));
                    delta.deleted += (before - edges.len()) as u32;
                }
            }
        }
        *graph = Graph::try_new(n, edges).expect("validated batch upholds graph invariants");
        Ok(delta)
    }
}

/// Structural FNV-1a fingerprint of a graph: vertex count plus every edge
/// (endpoints and weight) in list order. This is the `graph_rev` the
/// result cache keys on — a pure function of content, so replaying a WAL's
/// committed prefix after a crash lands on exactly the revision a
/// never-crashed service would report.
pub fn fingerprint(graph: &Graph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    fold(graph.num_vertices() as u64);
    for e in graph.edges() {
        fold((e.src as u64) << 32 | e.dst as u64);
        fold(e.weight as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::new(
            4,
            vec![Edge::new(0, 1, 5), Edge::new(1, 2, 3), Edge::new(0, 1, 7)],
        )
    }

    #[test]
    fn insert_appends_and_grows() {
        let mut g = sample();
        let d = MutationBatch::new()
            .insert(2, 3, 9)
            .insert(5, 0, 1)
            .apply(&mut g)
            .unwrap();
        assert_eq!(d.inserted, 2);
        assert_eq!(d.grew_vertices, 2); // ids 4 and 5
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 5);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn delete_removes_all_parallel_copies() {
        let mut g = sample();
        let d = MutationBatch::new().delete(0, 1).apply(&mut g).unwrap();
        assert_eq!(d.deleted, 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge(0), Edge::new(1, 2, 3));
    }

    #[test]
    fn missing_delete_rejects_whole_batch() {
        let mut g = sample();
        let before = g.clone();
        let err = MutationBatch::new()
            .insert(3, 3, 1)
            .delete(2, 0)
            .apply(&mut g)
            .unwrap_err();
        assert!(matches!(err, MutationError::MissingEdge { index: 1, .. }));
        assert_eq!(g, before, "failed batch must leave the graph untouched");
    }

    #[test]
    fn delete_sees_earlier_batch_inserts() {
        let mut g = sample();
        MutationBatch::new()
            .insert(2, 0, 4)
            .delete(2, 0)
            .apply(&mut g)
            .unwrap();
        assert_eq!(g.num_edges(), 3);
        // But a second delete of the same pair has nothing left to remove.
        let err = MutationBatch::new()
            .delete(0, 1)
            .delete(0, 1)
            .validate(&g)
            .unwrap_err();
        assert!(matches!(err, MutationError::MissingEdge { index: 1, .. }));
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert_eq!(
            MutationBatch::new().validate(&sample()),
            Err(MutationError::EmptyBatch)
        );
    }

    #[test]
    fn fingerprint_tracks_content_not_history() {
        let mut a = sample();
        MutationBatch::new().insert(3, 0, 2).apply(&mut a).unwrap();
        // From-scratch graph with the same final content.
        let b = Graph::new(
            4,
            vec![
                Edge::new(0, 1, 5),
                Edge::new(1, 2, 3),
                Edge::new(0, 1, 7),
                Edge::new(3, 0, 2),
            ],
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&sample()));
        // Weight changes alone change the revision.
        let c = Graph::new(4, vec![Edge::new(0, 1, 6)]);
        let d = Graph::new(4, vec![Edge::new(0, 1, 5)]);
        assert_ne!(fingerprint(&c), fingerprint(&d));
    }
}
