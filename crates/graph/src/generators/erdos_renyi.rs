//! G(n, m) Erdős–Rényi random graphs.

use crate::generators::DEFAULT_MAX_WEIGHT;
use crate::types::{Edge, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a directed G(n, m) graph: `m` edges with endpoints chosen
/// uniformly at random (self-loops allowed, parallel edges allowed —
/// matching the sparse regime where collisions are negligible).
pub fn erdos_renyi(n: u32, m: u64, seed: u64) -> Graph {
    assert!(n > 0 || m == 0, "cannot place edges in an empty vertex set");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let weight = rng.gen_range(1..=DEFAULT_MAX_WEIGHT);
        edges.push(Edge::new(src, dst, weight));
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{DegreeDistribution, Direction};

    #[test]
    fn counts_and_determinism() {
        let g = erdos_renyi(500, 2500, 11);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 2500);
        assert_eq!(g, erdos_renyi(500, 2500, 11));
        assert_ne!(g, erdos_renyi(500, 2500, 12));
    }

    #[test]
    fn zero_edges_allowed() {
        let g = erdos_renyi(10, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn degrees_are_flat() {
        let g = erdos_renyi(2000, 20000, 5);
        let d = DegreeDistribution::of(&g, Direction::In);
        // Poisson(10): 99.9th percentile around 21-22, skew ~2.2, never >4.
        assert!(
            d.skew() < 4.0,
            "ER degrees should be near-uniform, skew={}",
            d.skew()
        );
    }
}
