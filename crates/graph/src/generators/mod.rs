//! Synthetic graph generators.
//!
//! * [`mod@rmat`] — the recursive-matrix model of Chakrabarti et al. (reference
//!   \[5\] of the paper), used by the paper's own sensitivity study (Section
//!   5.2) and by our dataset surrogates for the power-law graphs.
//! * [`mod@erdos_renyi`] — uniform random graphs (useful in tests as an
//!   "unstructured" control).
//! * [`lattice`] — perturbed 2-D geometric lattices, the surrogate for road
//!   networks (uniform low degree, huge diameter).
//!
//! All generators are deterministic for a given seed and assign every edge a
//! raw weight seed drawn uniformly from `1..=max_weight`.

pub mod erdos_renyi;
pub mod lattice;
pub mod preferential;
pub mod rmat;
pub mod smallworld;

pub use erdos_renyi::erdos_renyi;
pub use lattice::lattice2d;
pub use preferential::barabasi_albert;
pub use rmat::{rmat, RmatConfig};
pub use smallworld::watts_strogatz;

/// Default largest raw edge weight produced by the generators.
pub const DEFAULT_MAX_WEIGHT: u32 = 64;

/// A uniformly random permutation of `0..n` (Fisher–Yates), for relabeling
/// generated graphs the way real datasets arrive: with vertex ids carrying
/// no locality. SNAP's road networks, for example, have arbitrary ids, and
/// that arbitrariness is what shrinks CuSha's computation windows.
pub fn random_permutation(n: u32, seed: u64) -> Vec<u32> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}
