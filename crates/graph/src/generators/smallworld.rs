//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice where each vertex connects to its `k` nearest clockwise
//! neighbours, with every edge's endpoint rewired uniformly at random with
//! probability `beta`. Interpolates between a road-network-like regular
//! structure (`beta = 0`) and an Erdős–Rényi-like random one (`beta = 1`),
//! which makes it a useful locality knob for shard/window experiments.

use crate::generators::DEFAULT_MAX_WEIGHT;
use crate::types::{Edge, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a directed Watts–Strogatz graph: `n` vertices, `n * k` edges.
///
/// # Panics
/// Panics if `k == 0`, `k >= n`, or `beta` is not a probability.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> Graph {
    assert!(k > 0 && k < n.max(1), "need 0 < k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity((n as usize) * (k as usize));
    for v in 0..n {
        for hop in 1..=k {
            let mut dst = (v + hop) % n;
            if rng.gen::<f64>() < beta {
                // Rewire: any vertex but v itself.
                dst = loop {
                    let cand = rng.gen_range(0..n);
                    if cand != v {
                        break cand;
                    }
                };
            }
            let w = rng.gen_range(1..=DEFAULT_MAX_WEIGHT);
            edges.push(Edge::new(v, dst, w));
        }
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{DegreeDistribution, Direction};

    #[test]
    fn counts_and_determinism() {
        let g = watts_strogatz(200, 4, 0.1, 5);
        assert_eq!(g.num_vertices(), 200);
        assert_eq!(g.num_edges(), 800);
        assert_eq!(g, watts_strogatz(200, 4, 0.1, 5));
    }

    #[test]
    fn beta_zero_is_a_perfect_ring_lattice() {
        let g = watts_strogatz(50, 3, 0.0, 1);
        for e in g.edges() {
            let hop = (e.dst + 50 - e.src) % 50;
            assert!((1..=3).contains(&hop), "edge {e:?} not a ring edge");
        }
        // Uniform out- AND in-degree.
        let d = DegreeDistribution::of(&g, Direction::In);
        assert_eq!(d.max_degree, 3);
        assert_eq!(d.counts[3], 50);
    }

    #[test]
    fn rewiring_breaks_locality() {
        let regular = watts_strogatz(300, 4, 0.0, 2);
        let random = watts_strogatz(300, 4, 1.0, 2);
        let long_edges = |g: &Graph| {
            g.edges()
                .iter()
                .filter(|e| {
                    let fwd = (e.dst + 300 - e.src) % 300;
                    fwd > 4 && fwd < 296
                })
                .count()
        };
        assert_eq!(long_edges(&regular), 0);
        assert!(long_edges(&random) > 200);
    }

    #[test]
    fn no_self_loops_from_rewiring() {
        let g = watts_strogatz(40, 2, 1.0, 3);
        assert!(g.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    #[should_panic(expected = "0 < k < n")]
    fn rejects_bad_k() {
        watts_strogatz(5, 5, 0.1, 0);
    }
}
