//! Barabási–Albert preferential attachment.
//!
//! Vertices arrive one at a time and attach `m` out-edges to existing
//! vertices with probability proportional to their current degree,
//! producing the power-law in-degree tail characteristic of citation and
//! social graphs. Complements R-MAT: BA grows hubs *temporally* (old
//! vertices are hubs), so vertex id correlates with degree — a distinct
//! shard-layout stressor.

use crate::generators::DEFAULT_MAX_WEIGHT;
use crate::types::{Edge, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a Barabási–Albert graph with `n` vertices and `m` attachments
/// per arriving vertex (so roughly `(n - m) * m` edges).
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: u32, m: u32, seed: u64) -> Graph {
    assert!(m > 0 && n > m, "need n > m > 0");
    let mut rng = SmallRng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint, making degree-
    // proportional sampling a uniform pick (the standard BA trick).
    let mut endpoint_pool: Vec<u32> = (0..m).collect();
    let mut edges = Vec::with_capacity(((n - m) as usize) * (m as usize));
    for v in m..n {
        let mut chosen = Vec::with_capacity(m as usize);
        while chosen.len() < m as usize {
            let t = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            let w = rng.gen_range(1..=DEFAULT_MAX_WEIGHT);
            edges.push(Edge::new(v, t, w));
            endpoint_pool.push(v);
            endpoint_pool.push(t);
        }
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{DegreeDistribution, Direction};

    #[test]
    fn counts_and_determinism() {
        let g = barabasi_albert(500, 3, 9);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), (500 - 3) * 3);
        assert_eq!(g, barabasi_albert(500, 3, 9));
    }

    #[test]
    fn indegree_tail_is_heavy() {
        let g = barabasi_albert(3000, 4, 10);
        let d = DegreeDistribution::of(&g, Direction::In);
        assert!(d.skew() > 5.0, "BA should be power-law, skew {}", d.skew());
        // Every arriving vertex has out-degree exactly m.
        let out = g.out_degrees();
        assert!(out[4..].iter().all(|&o| o == 4));
    }

    #[test]
    fn early_vertices_become_hubs() {
        let g = barabasi_albert(2000, 3, 11);
        let d = g.in_degrees();
        let early: u32 = d[..20].iter().sum();
        let late: u32 = d[d.len() - 20..].iter().sum();
        assert!(
            early > 10 * late.max(1),
            "early {early} vs late {late}: age should confer degree"
        );
    }

    #[test]
    fn no_self_loops_or_duplicate_attachments() {
        let g = barabasi_albert(300, 5, 12);
        assert!(g.edges().iter().all(|e| e.src != e.dst));
        // Per arriving vertex, targets are distinct.
        let mut by_src: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for e in g.edges() {
            by_src.entry(e.src).or_default().push(e.dst);
        }
        for (_, mut dsts) in by_src {
            let len = dsts.len();
            dsts.sort_unstable();
            dsts.dedup();
            assert_eq!(dsts.len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "n > m > 0")]
    fn rejects_degenerate_parameters() {
        barabasi_albert(3, 3, 0);
    }
}
