//! Perturbed 2-D geometric lattice — the road-network surrogate.
//!
//! RoadNetCA in Table 1 has |E|/|V| ≈ 2.8, an essentially uniform degree
//! distribution, and enormous diameter — the combination that produces the
//! tiny computation windows motivating Concatenated Windows. A 2-D grid
//! where each intersection connects to its right/down neighbours (both
//! directions), with a fraction of edges randomly deleted and a sprinkle of
//! shortcut edges, reproduces all three properties.

use crate::generators::DEFAULT_MAX_WEIGHT;
use crate::types::{Edge, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a `rows x cols` lattice.
///
/// * Every grid edge (4-neighbourhood, both directions) is kept with
///   probability `keep`, modeling missing road segments.
/// * `shortcuts` extra random edges model highways/ramps.
///
/// The result has `rows * cols` vertices and roughly
/// `keep * (4 * rows * cols - 2 * (rows + cols)) + shortcuts` edges.
pub fn lattice2d(rows: u32, cols: u32, keep: f64, shortcuts: u64, seed: u64) -> Graph {
    assert!(rows > 0 && cols > 0, "lattice must be non-empty");
    assert!((0.0..=1.0).contains(&keep), "keep must be a probability");
    let n = rows
        .checked_mul(cols)
        .expect("lattice vertex count overflows u32");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let id = |r: u32, c: u32| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let v = id(r, c);
            let link = |u: u32, rng: &mut SmallRng, edges: &mut Vec<Edge>| {
                if rng.gen::<f64>() < keep {
                    let w = rng.gen_range(1..=DEFAULT_MAX_WEIGHT);
                    edges.push(Edge::new(v, u, w));
                }
                if rng.gen::<f64>() < keep {
                    let w = rng.gen_range(1..=DEFAULT_MAX_WEIGHT);
                    edges.push(Edge::new(u, v, w));
                }
            };
            if c + 1 < cols {
                link(id(r, c + 1), &mut rng, &mut edges);
            }
            if r + 1 < rows {
                link(id(r + 1, c), &mut rng, &mut edges);
            }
        }
    }
    for _ in 0..shortcuts {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let w = rng.gen_range(1..=DEFAULT_MAX_WEIGHT);
        edges.push(Edge::new(a, b, w));
    }
    Graph::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{DegreeDistribution, Direction};

    #[test]
    fn full_lattice_edge_count() {
        // keep = 1.0: every interior grid link present in both directions.
        let g = lattice2d(10, 10, 1.0, 0, 0);
        assert_eq!(g.num_vertices(), 100);
        // Horizontal links: 10 rows * 9 = 90; vertical: 9 * 10 = 90; x2 dirs.
        assert_eq!(g.num_edges(), 360);
    }

    #[test]
    fn keep_reduces_density() {
        let dense = lattice2d(30, 30, 1.0, 0, 1);
        let sparse = lattice2d(30, 30, 0.5, 0, 1);
        assert!(sparse.num_edges() < dense.num_edges());
        assert!(sparse.num_edges() > 0);
    }

    #[test]
    fn degree_distribution_is_uniform() {
        let g = lattice2d(50, 50, 0.85, 100, 2);
        let d = DegreeDistribution::of(&g, Direction::In);
        assert!(
            d.max_degree <= 8,
            "lattice in-degree bounded, got {}",
            d.max_degree
        );
        assert!(d.skew() < 3.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(lattice2d(8, 8, 0.7, 5, 9), lattice2d(8, 8, 0.7, 5, 9));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        lattice2d(0, 5, 1.0, 0, 0);
    }
}
