//! R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos;
//! paper reference \[5\]).
//!
//! Each edge is placed by recursively descending into one of the four
//! quadrants of the adjacency matrix with probabilities `(a, b, c, d)`.
//! Skewed probabilities (`a` ≫ `d`) produce power-law degree distributions
//! resembling social and web graphs — exactly the generator the paper's own
//! Section 5.2 sensitivity study uses for its `i_j` graphs.

use crate::generators::DEFAULT_MAX_WEIGHT;
use crate::types::{Edge, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log₂ of the number of vertices (vertex count is `1 << scale`).
    pub scale: u32,
    /// Number of edges to generate.
    pub edges: u64,
    /// Quadrant probabilities; must be positive and sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability (`1 - a - b - c`).
    pub d: f64,
    /// Per-level probability noise, as in the reference implementation, to
    /// avoid unnaturally smooth degree staircases. 0.0 disables it.
    pub noise: f64,
    /// Largest raw edge weight (weights are uniform in `1..=max_weight`).
    pub max_weight: u32,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style defaults: `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
    pub fn graph500(scale: u32, edges: u64, seed: u64) -> Self {
        RmatConfig {
            scale,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
            max_weight: DEFAULT_MAX_WEIGHT,
            seed,
        }
    }

    /// Milder skew, closer to co-purchase networks such as Amazon0312.
    pub fn mild(scale: u32, edges: u64, seed: u64) -> Self {
        RmatConfig {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
            ..Self::graph500(scale, edges, seed)
        }
    }

    fn validate(&self) {
        assert!(
            self.scale <= 31,
            "scale {} too large for u32 ids",
            self.scale
        );
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "quadrant probabilities must sum to 1 (got {sum})"
        );
        assert!(
            self.a > 0.0 && self.b > 0.0 && self.c > 0.0 && self.d > 0.0,
            "quadrant probabilities must be positive"
        );
    }
}

/// Generates an R-MAT graph. Parallel edges and self-loops are kept (as in
/// the reference model); callers wanting a simple graph can route through
/// [`crate::GraphBuilder`].
pub fn rmat(cfg: &RmatConfig) -> Graph {
    cfg.validate();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = 1u32 << cfg.scale;
    let mut edges = Vec::with_capacity(cfg.edges as usize);
    for _ in 0..cfg.edges {
        let (src, dst) = place_edge(cfg, &mut rng);
        let weight = rng.gen_range(1..=cfg.max_weight);
        edges.push(Edge::new(src, dst, weight));
    }
    Graph::new(n, edges)
}

/// Recursively descends the adjacency matrix to choose one cell.
fn place_edge(cfg: &RmatConfig, rng: &mut SmallRng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for level in (0..cfg.scale).rev() {
        // Perturb the quadrant probabilities slightly at each level.
        let jitter = |p: f64, rng: &mut SmallRng| -> f64 {
            if cfg.noise > 0.0 {
                p * (1.0 + cfg.noise * (rng.gen::<f64>() - 0.5))
            } else {
                p
            }
        };
        let a = jitter(cfg.a, rng);
        let b = jitter(cfg.b, rng);
        let c = jitter(cfg.c, rng);
        let d = jitter(cfg.d, rng);
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        let (down, right) = if r < a {
            (0, 0)
        } else if r < a + b {
            (0, 1)
        } else if r < a + b + c {
            (1, 0)
        } else {
            (1, 1)
        };
        src |= down << level;
        dst |= right << level;
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{DegreeDistribution, Direction};

    #[test]
    fn generates_requested_counts() {
        let g = rmat(&RmatConfig::graph500(10, 8192, 42));
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 8192);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = rmat(&RmatConfig::graph500(8, 1000, 7));
        let b = rmat(&RmatConfig::graph500(8, 1000, 7));
        assert_eq!(a, b);
        let c = rmat(&RmatConfig::graph500(8, 1000, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn weights_in_range() {
        let g = rmat(&RmatConfig::graph500(8, 2000, 1));
        assert!(g.edges().iter().all(|e| (1..=64).contains(&e.weight)));
    }

    #[test]
    fn skewed_parameters_produce_skewed_degrees() {
        let skewed = rmat(&RmatConfig::graph500(12, 1 << 15, 3));
        let dist = DegreeDistribution::of(&skewed, Direction::In);
        assert!(
            dist.skew() > 4.0,
            "graph500 RMAT should have heavy-tailed in-degrees, skew = {}",
            dist.skew()
        );
        // Uniform quadrants ~ Erdős–Rényi-like: much flatter.
        let flat = rmat(&RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
            ..RmatConfig::graph500(12, 1 << 15, 3)
        });
        let flat_dist = DegreeDistribution::of(&flat, Direction::In);
        assert!(flat_dist.skew() < dist.skew());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(&RmatConfig {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
            ..RmatConfig::graph500(4, 8, 0)
        });
    }
}
