//! Fleet partitioning: edge-balanced contiguous shard ranges plus halo sets.
//!
//! A multi-device engine assigns each device a *contiguous* run of shards
//! (contiguous runs keep every device's vertex range contiguous, so vertex
//! ownership is a range check and shard-major arrays split without
//! reshuffling). Shards vary wildly in edge count on power-law graphs, so
//! ranges are chosen by balancing *edges*, not shard counts: boundary `k`
//! is the first shard where the edge prefix sum reaches `k/P` of the total.
//! That greedy rule carries a provable guarantee — every partition's load
//! differs from the ideal `total/P` by less than the largest single shard —
//! which [`FleetPartition`] surfaces as a tested invariant.
//!
//! Per partition the module also computes the **halo set**: the remote
//! vertices (sources owned by other partitions) whose values the partition
//! reads, and which therefore must arrive over the interconnect before its
//! next iteration. Partitioning is defined purely by the graph and the
//! `(num_vertices, vertices_per_shard)` convention shared with the engine's
//! shard decomposition, so this crate needs no dependency on the engine.

use crate::types::Graph;
use std::ops::Range;

/// One device's slice of the fleet: its shard run, vertex range, edge load,
/// and the remote vertices it reads.
#[derive(Clone, Debug)]
pub struct DevicePartition {
    /// Contiguous shard indices assigned to this device (may be empty when
    /// there are fewer shards than devices).
    pub shards: Range<usize>,
    /// Vertex range owned by those shards (clamped at `|V|`).
    pub vertices: Range<u32>,
    /// Total edge entries across the assigned shards.
    pub edges: usize,
    /// Sorted, deduplicated remote source vertices this partition reads —
    /// their updated values must arrive before the next iteration.
    pub halo: Vec<u32>,
}

impl DevicePartition {
    /// Does this partition own vertex `v`?
    #[inline]
    pub fn owns(&self, v: u32) -> bool {
        self.vertices.contains(&v)
    }
}

/// An edge-balanced split of a shard sequence across `P` devices.
#[derive(Clone, Debug)]
pub struct FleetPartition {
    parts: Vec<DevicePartition>,
    num_shards: usize,
    max_shard_edges: usize,
    total_edges: usize,
}

impl FleetPartition {
    /// Partitions `g`'s shard sequence (shard `s` owns destination range
    /// `[s*n_per, (s+1)*n_per)`, `p = ceil(|V|/n_per)`, minimum one shard —
    /// the same convention as the engine's G-Shards builder) into `parts`
    /// edge-balanced contiguous ranges with halo sets.
    ///
    /// # Panics
    /// Panics when `parts == 0` or `vertices_per_shard == 0`.
    pub fn from_graph(g: &Graph, vertices_per_shard: u32, parts: usize) -> Self {
        assert!(parts > 0, "fleet partition needs at least one device");
        assert!(
            vertices_per_shard > 0,
            "vertices_per_shard must be positive"
        );
        let n = g.num_vertices();
        let n_per = vertices_per_shard;
        let p = (n.div_ceil(n_per)).max(1) as usize;

        let mut shard_edges = vec![0usize; p];
        for e in g.edges() {
            shard_edges[(e.dst / n_per) as usize] += 1;
        }
        let ranges = edge_balanced_ranges(&shard_edges, parts);

        let mut out = Vec::with_capacity(parts);
        for r in &ranges {
            let vertices = if r.is_empty() {
                let lo = (r.start as u32).saturating_mul(n_per).min(n);
                lo..lo
            } else {
                let lo = (r.start as u32 * n_per).min(n);
                let hi = (r.end as u32).saturating_mul(n_per).min(n);
                lo..hi
            };
            let edges = shard_edges[r.clone()].iter().sum();
            out.push(DevicePartition {
                shards: r.clone(),
                vertices,
                edges,
                halo: Vec::new(),
            });
        }

        // Halo of partition k: distinct sources of its edges that it does
        // not own. One pass over the edge list; dedup by sort at the end.
        for e in g.edges() {
            let k = ranges
                .iter()
                .position(|r| r.contains(&((e.dst / n_per) as usize)))
                .expect("ranges cover every shard");
            if !out[k].vertices.contains(&e.src) {
                out[k].halo.push(e.src);
            }
        }
        for part in &mut out {
            part.halo.sort_unstable();
            part.halo.dedup();
        }

        FleetPartition {
            parts: out,
            num_shards: p,
            max_shard_edges: shard_edges.iter().copied().max().unwrap_or(0),
            total_edges: g.num_edges() as usize,
        }
    }

    /// Per-device partitions, in device order. Always `parts` entries.
    pub fn parts(&self) -> &[DevicePartition] {
        &self.parts
    }

    /// Number of devices.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Number of shards that were split.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Largest single shard's edge count — the balance slack bound.
    pub fn max_shard_edges(&self) -> usize {
        self.max_shard_edges
    }

    /// Total edges across all partitions.
    pub fn total_edges(&self) -> usize {
        self.total_edges
    }

    /// The device owning vertex `v`, if any (`None` past `|V|` or when the
    /// owning range landed on an empty partition of an edgeless tail).
    pub fn owner_of(&self, v: u32) -> Option<usize> {
        self.parts.iter().position(|p| p.owns(v))
    }

    /// Load imbalance: max partition edge load over the ideal share
    /// (`total/P`); 1.0 is perfect. Returns 1.0 for an edgeless graph.
    pub fn imbalance(&self) -> f64 {
        if self.total_edges == 0 {
            return 1.0;
        }
        let max = self.parts.iter().map(|p| p.edges).max().unwrap_or(0);
        max as f64 * self.parts.len() as f64 / self.total_edges as f64
    }
}

/// Splits `shard_edges` into exactly `parts` contiguous ranges whose edge
/// loads track the ideal `total/parts` share: boundary `k` is the smallest
/// index where the prefix sum reaches `k * total / parts`.
///
/// Guarantee: every range's load differs from the ideal share by *less than
/// the largest single shard's* edge count (a boundary can overshoot its
/// target only by the shard that crossed it). Degenerate inputs degrade
/// gracefully — with fewer shards than parts, trailing ranges are empty.
///
/// # Panics
/// Panics when `parts == 0`.
pub fn edge_balanced_ranges(shard_edges: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot split into zero ranges");
    let p = shard_edges.len();
    let total: u128 = shard_edges.iter().map(|&e| e as u128).sum();
    let mut prefix = 0u128;
    let mut boundaries = vec![0usize; parts + 1];
    boundaries[parts] = p;
    let mut k = 1;
    for (s, &e) in shard_edges.iter().enumerate() {
        // Close every boundary whose target `k*total/parts` is already met
        // before shard `s` contributes.
        while k < parts && prefix * parts as u128 >= k as u128 * total {
            boundaries[k] = s;
            k += 1;
        }
        prefix += e as u128;
    }
    while k < parts {
        boundaries[k] = p;
        k += 1;
    }
    (0..parts)
        .map(|i| boundaries[i]..boundaries[i + 1])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat::{rmat, RmatConfig};
    use crate::types::Edge;

    fn check_cover(ranges: &[Range<usize>], p: usize) {
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, p);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile contiguously");
        }
    }

    #[test]
    fn even_shards_split_evenly() {
        let ranges = edge_balanced_ranges(&[10; 8], 4);
        check_cover(&ranges, 8);
        assert_eq!(ranges, vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn skewed_shards_balance_edges_not_counts() {
        // One huge shard followed by many small ones.
        let edges = [100, 1, 1, 1, 1, 1, 1, 1];
        let ranges = edge_balanced_ranges(&edges, 2);
        check_cover(&ranges, 8);
        // The huge shard alone exceeds half the total, so it stands alone.
        assert_eq!(ranges[0], 0..1);
        assert_eq!(ranges[1], 1..8);
    }

    #[test]
    fn balance_invariant_holds_for_random_loads() {
        // Deterministic pseudo-random loads (LCG), no external RNG needed.
        let mut x = 12345u64;
        let edges: Vec<usize> = (0..257)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as usize % 1000
            })
            .collect();
        let total: usize = edges.iter().sum();
        let max_shard = *edges.iter().max().unwrap();
        for parts in [1, 2, 3, 4, 7, 8, 16] {
            let ranges = edge_balanced_ranges(&edges, parts);
            check_cover(&ranges, edges.len());
            let ideal = total as f64 / parts as f64;
            for r in &ranges {
                let load: usize = edges[r.clone()].iter().sum();
                assert!(
                    (load as f64 - ideal).abs() < max_shard as f64 + 1.0,
                    "parts={parts} load={load} ideal={ideal} max_shard={max_shard}"
                );
            }
        }
    }

    #[test]
    fn fewer_shards_than_parts_leaves_empty_tail_ranges() {
        let ranges = edge_balanced_ranges(&[5, 5], 4);
        check_cover(&ranges, 2);
        assert_eq!(ranges.iter().filter(|r| !r.is_empty()).count(), 2);
        // Every shard still assigned exactly once.
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn empty_input_yields_all_empty_ranges() {
        let ranges = edge_balanced_ranges(&[], 3);
        assert_eq!(ranges, vec![0..0, 0..0, 0..0]);
    }

    fn sample() -> Graph {
        Graph::new(
            8,
            vec![
                Edge::new(1, 2, 10),
                Edge::new(7, 2, 11),
                Edge::new(0, 1, 12),
                Edge::new(3, 0, 13),
                Edge::new(5, 4, 14),
                Edge::new(6, 4, 15),
                Edge::new(2, 7, 16),
                Edge::new(4, 7, 17),
                Edge::new(0, 5, 18),
                Edge::new(6, 1, 19),
            ],
        )
    }

    #[test]
    fn two_device_halos_on_sample() {
        // n_per=4 -> shards {0..4}, {4..8}, 5 edges each.
        let fp = FleetPartition::from_graph(&sample(), 4, 2);
        assert_eq!(fp.num_shards(), 2);
        let d0 = &fp.parts()[0];
        let d1 = &fp.parts()[1];
        assert_eq!(d0.vertices, 0..4);
        assert_eq!(d1.vertices, 4..8);
        assert_eq!(d0.edges + d1.edges, 10);
        // Device 0's edges have dst in 0..4 with sources {1,7,0,3,6}:
        // remote sources are 6 and 7.
        assert_eq!(d0.halo, vec![6, 7]);
        // Device 1's edges have dst in 4..8 with sources {5,6,2,4,0}:
        // remote sources are 0 and 2.
        assert_eq!(d1.halo, vec![0, 2]);
        assert_eq!(fp.owner_of(0), Some(0));
        assert_eq!(fp.owner_of(7), Some(1));
        assert_eq!(fp.owner_of(8), None);
    }

    #[test]
    fn single_device_has_no_halo() {
        let fp = FleetPartition::from_graph(&sample(), 4, 1);
        assert_eq!(fp.num_parts(), 1);
        assert!(fp.parts()[0].halo.is_empty());
        assert_eq!(fp.parts()[0].edges, 10);
        assert!((fp.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let fp = FleetPartition::from_graph(&Graph::empty(5), 2, 4);
        assert_eq!(fp.num_parts(), 4);
        assert_eq!(fp.total_edges(), 0);
        assert!((fp.imbalance() - 1.0).abs() < 1e-12);
        for part in fp.parts() {
            assert_eq!(part.edges, 0);
            assert!(part.halo.is_empty());
        }
        // Shards are still covered exactly once.
        let covered: usize = fp.parts().iter().map(|p| p.shards.len()).sum();
        assert_eq!(covered, fp.num_shards());
    }

    #[test]
    fn fewer_shards_than_devices() {
        // 8 vertices, n_per=8 -> a single shard split across 4 devices.
        let fp = FleetPartition::from_graph(&sample(), 8, 4);
        assert_eq!(fp.num_shards(), 1);
        let loaded: Vec<_> = fp.parts().iter().filter(|p| p.edges > 0).collect();
        assert_eq!(loaded.len(), 1, "one shard cannot split further");
        assert_eq!(loaded[0].edges, 10);
        assert!(
            loaded[0].halo.is_empty(),
            "sole loaded device owns everything"
        );
        for part in fp.parts().iter().filter(|p| p.edges == 0) {
            assert!(part.shards.is_empty() || part.edges == 0);
        }
    }

    #[test]
    fn single_giant_shard_dominates_balance_bound() {
        // Vertex 0 receives every edge: shard 0 is the giant.
        let n = 64u32;
        let edges: Vec<Edge> = (1..n).map(|s| Edge::new(s, 0, s)).collect();
        let g = Graph::new(n, edges);
        let fp = FleetPartition::from_graph(&g, 4, 4);
        let ideal = fp.total_edges() as f64 / 4.0;
        for part in fp.parts() {
            assert!(
                (part.edges as f64 - ideal).abs() < fp.max_shard_edges() as f64 + 1.0,
                "load {} vs ideal {ideal} bound {}",
                part.edges,
                fp.max_shard_edges()
            );
        }
        // The giant shard's partition carries nearly everything.
        assert_eq!(fp.parts()[0].edges, 63);
    }

    #[test]
    fn rmat_partition_invariants() {
        let g = rmat(&RmatConfig::graph500(9, 4000, 77));
        for parts in [1, 2, 4, 8] {
            let fp = FleetPartition::from_graph(&g, 32, parts);
            let total: usize = fp.parts().iter().map(|p| p.edges).sum();
            assert_eq!(total, g.num_edges() as usize);
            let ideal = total as f64 / parts as f64;
            for part in fp.parts() {
                // The documented balance guarantee.
                assert!((part.edges as f64 - ideal).abs() < fp.max_shard_edges() as f64 + 1.0);
                // Halo correctness: sorted, deduped, strictly remote.
                assert!(part.halo.windows(2).all(|w| w[0] < w[1]));
                assert!(part.halo.iter().all(|&v| !part.owns(v)));
            }
            // Every remote-source edge is reflected in some halo.
            for e in g.edges() {
                let k = fp
                    .parts()
                    .iter()
                    .position(|p| p.shards.contains(&((e.dst / 32) as usize)))
                    .unwrap();
                if !fp.parts()[k].owns(e.src) {
                    assert!(fp.parts()[k].halo.binary_search(&e.src).is_ok());
                }
            }
            assert!(fp.imbalance() >= 1.0 - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_parts_rejected() {
        let _ = FleetPartition::from_graph(&Graph::empty(1), 1, 0);
    }
}
