//! [`Engine`] middleware adapters for the baselines, so
//! [`cusha_core::run_engine`] drives VWC-CSR and MTCPU-CSR through the same
//! validation / deadline / retry / final-scrub stack as the CuSha engines.

use crate::mtcpu::{try_run_mtcpu, MtcpuConfig};
use crate::vwc::{try_run_vwc, VwcConfig};
use cusha_core::{CuShaOutput, Engine, EngineCtx, EngineError, VertexProgram};
use cusha_graph::Graph;

/// Adapter for the VWC-CSR baseline. Maps the generic config onto
/// [`VwcConfig`] (threads per block, iteration cap, profiling, device and
/// tracer carry over) and threads the middleware's fault plan and observer
/// through [`try_run_vwc`].
pub struct VwcEngine {
    /// Virtual warp width (2, 4, 8, 16 or 32).
    pub virtual_warp: usize,
    /// Outlier-deferral degree threshold (`None` disables deferral).
    pub defer_outliers: Option<u32>,
}

impl VwcEngine {
    /// Adapter with the given virtual warp width, no deferral.
    pub fn new(virtual_warp: usize) -> Self {
        VwcEngine {
            virtual_warp,
            defer_outliers: None,
        }
    }
}

impl<P: VertexProgram> Engine<P> for VwcEngine {
    fn label(&self) -> String {
        format!("VWC-CSR/{}", self.virtual_warp)
    }

    fn execute(
        &mut self,
        prog: &P,
        graph: &Graph,
        ctx: EngineCtx<'_>,
    ) -> Result<CuShaOutput<P::V>, EngineError<P::V>> {
        let mut cfg = VwcConfig::new(self.virtual_warp);
        cfg.threads_per_block = ctx.cfg.threads_per_block;
        cfg.max_iterations = ctx.cfg.max_iterations;
        cfg.defer_outliers = self.defer_outliers;
        cfg.profile = ctx.cfg.profile;
        cfg.device = ctx.cfg.device.clone();
        cfg.trace = ctx.cfg.trace.clone();
        let out = try_run_vwc(prog, graph, &cfg, ctx.fault_plan, ctx.observer)?;
        Ok(CuShaOutput {
            values: out.values,
            stats: out.stats,
        })
    }
}

/// Adapter for the MTCPU-CSR baseline. The CPU engine runs on host memory
/// — outside the device fault domain — so the middleware's fault plan is
/// ignored; deadlines apply against real wall-clock time.
pub struct MtcpuEngine {
    /// Worker threads.
    pub threads: usize,
}

impl MtcpuEngine {
    /// Adapter with the given thread count.
    pub fn new(threads: usize) -> Self {
        MtcpuEngine { threads }
    }
}

impl<P: VertexProgram> Engine<P> for MtcpuEngine {
    fn label(&self) -> String {
        format!("MTCPU-CSR/{}", self.threads)
    }

    fn execute(
        &mut self,
        prog: &P,
        graph: &Graph,
        ctx: EngineCtx<'_>,
    ) -> Result<CuShaOutput<P::V>, EngineError<P::V>> {
        let mut cfg = MtcpuConfig::new(self.threads);
        cfg.max_iterations = ctx.cfg.max_iterations;
        cfg.trace = ctx.cfg.trace.clone();
        let out = try_run_mtcpu(prog, graph, &cfg, ctx.observer)?;
        Ok(CuShaOutput {
            values: out.values,
            stats: out.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_algos::bfs::{bfs_levels, Bfs};
    use cusha_core::{run_engine, CuShaConfig, NoopObserver, Repr};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn middleware_drives_both_baselines() {
        let g = rmat(&RmatConfig::graph500(7, 700, 50));
        let oracle = bfs_levels(&g, 0);
        let cfg = CuShaConfig::new(Repr::GShards);
        for engine in [
            &mut VwcEngine::new(8) as &mut dyn Engine<Bfs>,
            &mut MtcpuEngine::new(4),
        ] {
            let out = run_engine(engine, &Bfs::new(0), &g, &cfg, None, &mut NoopObserver)
                .expect("baseline under middleware");
            assert_eq!(out.values, oracle, "{}", engine.label());
        }
    }

    #[test]
    fn deadline_cancels_vwc() {
        let g = rmat(&RmatConfig::graph500(8, 3000, 51));
        let mut cfg = CuShaConfig::new(Repr::GShards);
        cfg.deadline_seconds = Some(1e-9);
        let err = run_engine(
            &mut VwcEngine::new(8),
            &Bfs::new(0),
            &g,
            &cfg,
            None,
            &mut NoopObserver,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Deadline { .. }), "{err}");
    }
}
