//! The Virtual Warp-Centric CSR baseline (paper Appendix A).
//!
//! Each *virtual warp* of `vw` lanes (2, 4, 8, 16 or 32) processes one
//! vertex per iteration: a leader lane performs the SISD phases (reading
//! the CSR offsets and the old vertex value), the lanes then sweep the
//! vertex's incoming edges `vw` at a time — gathering neighbour values from
//! `VertexValues`, which is the input-dependent **non-coalesced** access
//! pattern that motivates the paper — and a `log2(vw)`-step shared-memory
//! parallel reduction folds the partial results before the leader publishes
//! the new value.
//!
//! Functional folding is applied host-side in deterministic lane order
//! (sound because `compute` must be commutative + associative), while every
//! memory operation and the reduction ladder are issued through the
//! simulator for accounting, so efficiency metrics and timing reflect the
//! real access pattern.

use cusha_core::integrity::apply_flip;
use cusha_core::{
    CuShaOutput, EngineError, IterationStat, NoopObserver, RunObserver, RunStats, VertexProgram,
};
use cusha_graph::{Csr, Graph};
use cusha_obs::trace::{lanes, ArgVal, Tracer};
use cusha_simt::{DevVec, DeviceConfig, FaultPlan, Gpu, KernelDesc, Mask, VirtualWarps, WARP};

// Warp-trace replay site tags (see `cusha_simt::replay`). Every access
// pattern in this kernel is a pure function of the warp's vertex base (the
// CSR topology and buffer bases are fixed for the whole run), so whole
// phases replay from the second iteration on. Values still move — replay
// skips only the accounting.
const SITE_VWC_SISD: u64 = 0x7677_5349_5344;
const SITE_VWC_SWEEP: u64 = 0x7677_53574550;
const SITE_VWC_REDUCE: u64 = 0x7677_524544;
const SITE_VWC_DEF: u64 = 0x7677_444546;
/// Fused whole-warp scope (SISD + sweep + reduce) used when phase marks
/// are not being traced: one table probe per warp instead of three.
const SITE_VWC_WARP: u64 = 0x7677_57415250;

/// VWC-CSR configuration.
#[derive(Clone, Debug)]
pub struct VwcConfig {
    /// Virtual warp width (must divide 32).
    pub virtual_warp: usize,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Convergence-loop safety cap.
    pub max_iterations: u32,
    /// *Deferring outliers* (Hong et al., discussed in the paper's related
    /// work): vertices with more than this many incoming edges are skipped
    /// by their virtual warp and re-processed at the end of the block by a
    /// full 32-lane warp, trading a second pass for less intra-warp
    /// divergence on skewed graphs. `None` disables deferral.
    pub defer_outliers: Option<u32>,
    /// Retain per-launch kernel statistics in `RunStats::profile`.
    pub profile: bool,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Span/event tracer; disabled (no-op, zero-cost) by default.
    pub trace: Tracer,
}

impl VwcConfig {
    /// Defaults on the GTX 780 preset with the given virtual warp size.
    pub fn new(virtual_warp: usize) -> Self {
        VwcConfig {
            virtual_warp,
            threads_per_block: 256,
            max_iterations: 10_000,
            defer_outliers: None,
            profile: false,
            device: DeviceConfig::gtx780(),
            trace: Tracer::disabled(),
        }
    }

    /// Enables outlier deferral with the given degree threshold.
    pub fn with_outlier_deferral(mut self, threshold: u32) -> Self {
        self.defer_outliers = Some(threshold);
        self
    }

    /// Installs a tracer recording spans of the run.
    pub fn with_tracer(mut self, trace: Tracer) -> Self {
        self.trace = trace;
        self
    }
}

/// Output of a VWC run.
#[derive(Clone, Debug)]
pub struct VwcOutput<V> {
    /// Final vertex values.
    pub values: Vec<V>,
    /// Run statistics.
    pub stats: RunStats,
}

/// Executes `prog` over `graph` with the virtual warp-centric method.
///
/// # Panics
/// Panics on device faults; see [`try_run_vwc`]. A capped (non-converged)
/// run is returned with `stats.converged == false`, as before.
pub fn run_vwc<P: VertexProgram>(prog: &P, graph: &Graph, cfg: &VwcConfig) -> VwcOutput<P::V> {
    match try_run_vwc(prog, graph, cfg, None, &mut NoopObserver) {
        Ok(out) => out,
        Err(EngineError::NonConverged { partial }) => VwcOutput {
            values: partial.values,
            stats: partial.stats,
        },
        Err(e) => panic!("{e}"),
    }
}

/// [`run_vwc`] with every failure surfaced as an [`EngineError`], a
/// [`FaultPlan`] threaded through the middleware contract (installed before
/// the run, advanced state written back on every exit), and a
/// [`RunObserver`] consulted after each non-converged iteration (`false`
/// aborts with [`EngineError::Deadline`]). Silent bit flips due at a kernel
/// boundary land in the vertex-value buffer — the only resident value state
/// this engine keeps — whatever their nominal target.
pub fn try_run_vwc<P: VertexProgram, O: RunObserver + ?Sized>(
    prog: &P,
    graph: &Graph,
    cfg: &VwcConfig,
    fault_plan: Option<&mut FaultPlan>,
    observer: &mut O,
) -> Result<VwcOutput<P::V>, EngineError<P::V>> {
    let mut gpu = Gpu::new(cfg.device.clone());
    gpu.set_profiling(cfg.profile);
    gpu.set_tracer(cfg.trace.clone(), 0);
    if let Some(p) = fault_plan.as_deref() {
        gpu.set_fault_plan(p.clone());
    }
    let result = vwc_attempt(prog, graph, cfg, &mut gpu, observer);
    if let (Some(slot), Some(p)) = (fault_plan, gpu.take_fault_plan()) {
        *slot = p;
    }
    result
}

fn vwc_attempt<P: VertexProgram, O: RunObserver + ?Sized>(
    prog: &P,
    graph: &Graph,
    cfg: &VwcConfig,
    gpu: &mut Gpu,
    observer: &mut O,
) -> Result<VwcOutput<P::V>, EngineError<P::V>> {
    let vws = VirtualWarps::new(cfg.virtual_warp);
    let csr = Csr::from_graph(graph);
    let n = graph.num_vertices() as usize;

    // ---- Upload CSR (H2D) --------------------------------------------------
    let init: Vec<P::V> = (0..graph.num_vertices())
        .map(|v| prog.initial_value(v))
        .collect();
    let mut vertex_values = gpu.try_upload(&init)?;
    let in_edge_idxs = gpu.try_upload(csr.in_edge_idxs())?;
    let src_indxs = gpu.try_upload(csr.src_indxs())?;
    let static_buf: Option<DevVec<P::SV>> = match P::HAS_STATIC_VALUES {
        true => Some(gpu.try_upload(&prog.static_values(graph))?),
        false => None,
    };
    let edge_buf: Option<DevVec<P::E>> = match P::HAS_EDGE_VALUES {
        true => {
            let by_edge_id = prog.edge_values(graph);
            let vals: Vec<P::E> = csr
                .edge_ids()
                .iter()
                .map(|&id| by_edge_id[id as usize])
                .collect();
            Some(gpu.try_upload(&vals)?)
        }
        false => None,
    };
    let mut converged_flag = gpu.try_upload(&[1u32])?;
    let h2d_initial = gpu.h2d_seconds;
    cfg.trace.complete(
        0,
        lanes::ENGINE,
        "engine",
        "setup",
        0.0,
        gpu.total_seconds(),
    );

    // ---- Convergence loop --------------------------------------------------
    let vertices_per_block = (cfg.threads_per_block as usize / cfg.virtual_warp).max(1);
    let grid = (n.div_ceil(vertices_per_block)).max(1) as u32;
    let wpg = vws.per_physical(); // vertices (groups) per physical warp
    let desc = KernelDesc::new(
        format!("VWC-CSR/{}::{}", cfg.virtual_warp, prog.name()),
        grid,
        cfg.threads_per_block,
    );
    let mut total = RunStats {
        engine: format!("VWC-CSR/{}", cfg.virtual_warp),
        ..Default::default()
    };
    let mut converged = false;
    while total.iterations < cfg.max_iterations {
        let iter_ts = gpu.total_seconds();
        gpu.try_h2d(&mut converged_flag, &[1u32])?;
        // Silent bit flips scheduled at this kernel boundary land while the
        // data sits at rest in device DRAM. VWC keeps no SrcValue or window
        // state, so every flip corrupts the vertex-value buffer.
        let flips = gpu.take_due_bit_flips();
        for flip in &flips {
            apply_flip(&mut vertex_values, flip);
        }
        total.sdc.flips_injected += flips.len() as u64;
        let mut updated_this_iter = 0u64;
        let kstats = gpu.try_launch(&desc, |b| {
            let block_vertex_base = b.id() as usize * vertices_per_block;
            // `outcome` shared array (paper Appendix A line 7) used by the
            // per-step stores and the reduction ladder.
            let mut outcome = b.shared_alloc::<P::V>(cfg.threads_per_block as usize);
            let mut block_updated = false;
            let warps_per_block = (cfg.threads_per_block as usize) / WARP;
            // (vertex, csr start, degree, old value) of deferred outliers.
            let mut deferred: Vec<(usize, u32, u32, P::V)> = Vec::new();
            let vw = cfg.virtual_warp;
            let zcol = [0u32; WARP]; // trace keys are site+mask-determined
            for w in 0..warps_per_block {
                let warp_vertex_base = block_vertex_base + w * wpg;
                if warp_vertex_base >= n {
                    break;
                }
                // Lane -> vertex mapping for this physical warp. Valid
                // groups are a prefix, so the valid-lane set is a run.
                let vertex_of = |lane: usize| warp_vertex_base + vws.group_of(lane);
                let nvalid = (n - warp_vertex_base).min(wpg);
                let valid = Mask(((1u64 << (nvalid * vw)) - 1) as u32);
                let leaders = vws.leaders().and(valid);

                // Scope granularity: per-phase scopes keep per-phase REPLAY
                // events in traces; an untraced run fuses the warp's three
                // pure phases into one scope (one probe per warp). The
                // accounting is identical — `phase()` is a no-op when marks
                // are off, so nothing observable sits between the phases.
                let split = b.phases_traced();
                if !split {
                    b.warp_scope(
                        &[SITE_VWC_WARP, warp_vertex_base as u64, nvalid as u64, 0],
                        leaders,
                        &zcol,
                    );
                }

                // --- SISD phase (leader lanes): CSR offsets + old value.
                b.phase("sisd");
                // Keyed on the vertex base's coalescing alignment class
                // (all device buffers are 256-byte aligned, so `base mod
                // segment-lanes` fixes every segment/sector count), not the
                // base itself: thousands of warps share a handful of keys.
                if split {
                    b.warp_scope(
                        &[SITE_VWC_SISD, (warp_vertex_base % 32) as u64, nvalid as u64, 0],
                        leaders,
                        &zcol,
                    );
                }
                let starts = b.gload(&in_edge_idxs, leaders, vertex_of);
                let ends = b.gload(&in_edge_idxs, leaders, |l| vertex_of(l) + 1);
                let olds = b.gload(&vertex_values, leaders, vertex_of);
                b.exec(leaders, 1); // InitCompute
                if split {
                    b.warp_scope_end();
                }
                // Host-side group bookkeeping.
                let mut group_start = [0u32; WARP];
                let mut group_deg = [0u32; WARP];
                let mut group_old = [P::V::default(); WARP];
                let mut group_deferred = [false; WARP];
                let mut acc = [P::V::default(); WARP]; // accumulator per group
                for g in 0..wpg {
                    let leader = g * cfg.virtual_warp;
                    if !leaders.lane(leader) {
                        continue;
                    }
                    group_start[g] = starts[leader];
                    group_deg[g] = ends[leader] - starts[leader];
                    group_old[g] = olds[leader];
                    if let Some(threshold) = cfg.defer_outliers {
                        if group_deg[g] > threshold {
                            deferred.push((
                                vertex_of(leader),
                                group_start[g],
                                group_deg[g],
                                olds[leader],
                            ));
                            group_deg[g] = 0; // skipped by the main sweep
                            group_deferred[g] = true;
                            continue;
                        }
                    }
                    let mut local = P::V::default();
                    prog.init_compute(&mut local, &olds[leader]);
                    acc[g] = local;
                }

                // --- Neighbour sweep, `vw` edges of each vertex per step.
                b.phase("sweep");
                if split {
                    b.warp_scope(&[SITE_VWC_SWEEP, warp_vertex_base as u64, 0, 0], leaders, &zcol);
                }
                let warp_thread_base = w * WARP;
                let max_deg = (0..wpg).map(|g| group_deg[g]).max().unwrap_or(0);
                let steps = (max_deg as usize).div_ceil(cfg.virtual_warp);
                for step in 0..steps {
                    let slot_of =
                        |lane: usize| (step * cfg.virtual_warp + vws.lane_in_group(lane)) as u32;
                    // Per group: lanes whose edge slot is still in range —
                    // a low-bit run of the group's lane field.
                    let done = (step * vw) as u32;
                    let mut bits = 0u32;
                    for g in 0..nvalid {
                        let cnt = (group_deg[g].saturating_sub(done) as usize).min(vw);
                        bits |= (((1u64 << cnt) - 1) as u32) << (g * vw);
                    }
                    let mask = Mask(bits);
                    if mask.is_empty() {
                        continue;
                    }
                    let edge_index =
                        |lane: usize| (group_start[vws.group_of(lane)] + slot_of(lane)) as usize;
                    // Edge-array reads: partially coalesced (consecutive
                    // within a virtual warp, disjoint ranges across). With a
                    // single group per warp the slice is stride-1, so the
                    // closed-form run ops replace the per-lane address sort.
                    let ebase = (group_start[0] + done) as isize;
                    let nbrs = if wpg == 1 {
                        b.gload_run(&src_indxs, mask, ebase)
                    } else {
                        b.gload(&src_indxs, mask, edge_index)
                    };
                    // THE non-coalesced gather: neighbour values.
                    let nbr_vals = b.gload(&vertex_values, mask, |l| nbrs[l] as usize);
                    let nbr_static = match &static_buf {
                        Some(buf) => b.gload(buf, mask, |l| nbrs[l] as usize),
                        None => [P::SV::default(); WARP],
                    };
                    let evals = match &edge_buf {
                        Some(buf) => {
                            if wpg == 1 {
                                b.gload_run(buf, mask, ebase)
                            } else {
                                b.gload(buf, mask, edge_index)
                            }
                        }
                        None => [P::E::default(); WARP],
                    };
                    b.exec(mask, P::COMPUTE_COST);
                    // Fold into per-group accumulators (host-side, lane
                    // order; sound by commutativity+associativity), and
                    // issue the accounted `outcome` store of Appendix A.
                    for l in mask.iter() {
                        prog.compute(
                            &nbr_vals[l],
                            &nbr_static[l],
                            &evals[l],
                            &mut acc[vws.group_of(l)],
                        );
                    }
                    let mut vals = [P::V::default(); WARP];
                    for l in mask.iter() {
                        vals[l] = acc[vws.group_of(l)];
                    }
                    b.sstore_run(&mut outcome, mask, warp_thread_base as isize, &vals);
                }
                if split {
                    b.warp_scope_end();
                }

                // --- Parallel reduction ladder: log2(vw) halving steps with
                // shrinking active masks (the intra-warp divergence source).
                b.phase("reduce");
                // The ladder's shared-memory pattern depends only on the
                // warp's thread base and its valid-group count.
                if split {
                    b.warp_scope(
                        &[SITE_VWC_REDUCE, w as u64, nvalid as u64, 0],
                        leaders,
                        &zcol,
                    );
                }
                let mut off = cfg.virtual_warp / 2;
                while off >= 1 {
                    // Low `off` lanes of each valid group. The ladder reads
                    // and writes at a fixed lane offset, so both halves are
                    // stride-1 run ops.
                    let sub = ((1u64 << off) - 1) as u32;
                    let mut bits = 0u32;
                    for g in 0..nvalid {
                        bits |= sub << (g * vw);
                    }
                    let mask = Mask(bits);
                    let partial =
                        b.sload_run(&outcome, mask, (warp_thread_base + off) as isize);
                    b.sstore_run(&mut outcome, mask, warp_thread_base as isize, &partial);
                    b.exec(mask, 1);
                    off /= 2;
                }
                b.warp_scope_end();

                // --- Leader publishes if changed (Appendix A lines 22-25).
                b.phase("publish");
                let mut store_bits = 0u32;
                let mut news = [P::V::default(); WARP];
                for g in 0..wpg {
                    let leader = g * cfg.virtual_warp;
                    if !leaders.lane(leader) || group_deferred[g] {
                        continue;
                    }
                    let mut local = acc[g];
                    if prog.update_condition(&mut local, &group_old[g]) {
                        store_bits |= 1 << leader;
                    }
                    news[leader] = local;
                }
                // Not scoped: the store mask is value-dependent, so its
                // trace key would churn every iteration and evict stable
                // entries. The store is at most one lane per group.
                let store_mask = Mask(store_bits);
                b.exec(leaders, 1);
                if !store_mask.is_empty() {
                    b.gstore(&mut vertex_values, store_mask, vertex_of, |l| news[l]);
                    block_updated = true;
                    updated_this_iter += store_mask.count() as u64;
                }
            }

            // Second pass: deferred outliers, one full 32-lane warp each.
            if !deferred.is_empty() {
                b.phase("deferred");
            }
            for &(v, start, deg, old) in &deferred {
                let mut local = P::V::default();
                prog.init_compute(&mut local, &old);
                // The sweep and the full-warp ladder touch memory in a
                // pattern fixed by the vertex's CSR slice; the
                // value-dependent publish below stays outside the scope.
                b.warp_scope(
                    &[SITE_VWC_DEF, v as u64, start as u64, deg as u64],
                    Mask::first(WARP),
                    &zcol,
                );
                let mut k = 0u32;
                while k < deg {
                    let lanes = ((deg - k) as usize).min(WARP);
                    let mask = Mask::first(lanes);
                    let ebase = (start + k) as isize;
                    let nbrs = b.gload_run(&src_indxs, mask, ebase);
                    let nbr_vals = b.gload(&vertex_values, mask, |l| nbrs[l] as usize);
                    let nbr_static = match &static_buf {
                        Some(buf) => b.gload(buf, mask, |l| nbrs[l] as usize),
                        None => [P::SV::default(); WARP],
                    };
                    let evals = match &edge_buf {
                        Some(buf) => b.gload_run(buf, mask, ebase),
                        None => [P::E::default(); WARP],
                    };
                    b.exec(mask, P::COMPUTE_COST);
                    for l in mask.iter() {
                        prog.compute(&nbr_vals[l], &nbr_static[l], &evals[l], &mut local);
                    }
                    b.sstore_run(&mut outcome, mask, 0, &[local; WARP]);
                    k += lanes as u32;
                }
                // Full-warp reduction ladder.
                let mut off = WARP / 2;
                while off >= 1 {
                    let mask = Mask::first(off);
                    let partial = b.sload_run(&outcome, mask, off as isize);
                    b.sstore_run(&mut outcome, mask, 0, &partial);
                    b.exec(mask, 1);
                    off /= 2;
                }
                b.warp_scope_end();
                let cond = prog.update_condition(&mut local, &old);
                b.exec(Mask::first(1), 1);
                if cond {
                    b.gstore(&mut vertex_values, Mask::first(1), |_| v, |_| local);
                    block_updated = true;
                    updated_this_iter += 1;
                }
            }

            if block_updated {
                b.gstore(&mut converged_flag, Mask::first(1), |_| 0, |_| 0u32);
            }
        })?;
        total.iterations += 1;
        total.per_iteration.push(IterationStat {
            seconds: kstats.seconds,
            updated_vertices: updated_this_iter,
        });
        total.kernel.counters.add(&kstats.counters);
        total.kernel.blocks = kstats.blocks;
        total.kernel.threads_per_block = kstats.threads_per_block;
        let flag = gpu.try_download_scalar(&converged_flag, 0)?;
        let iter = total.iterations as u64 - 1;
        cfg.trace.complete_with(
            0,
            lanes::ENGINE,
            "engine",
            "iteration",
            iter_ts,
            gpu.total_seconds() - iter_ts,
            || {
                vec![
                    ("iteration", ArgVal::U64(iter)),
                    ("updated_vertices", ArgVal::U64(updated_this_iter)),
                ]
            },
        );
        cfg.trace.counter(
            0,
            lanes::ENGINE,
            "updated_vertices",
            gpu.total_seconds(),
            updated_this_iter as f64,
        );
        if flag == 1 {
            converged = true;
            break;
        }
        if !observer.on_iteration(total.iterations, updated_this_iter, gpu.total_seconds()) {
            return Err(EngineError::Deadline {
                iterations: total.iterations,
                elapsed_seconds: gpu.total_seconds(),
            });
        }
    }

    // ---- Download results (D2H) --------------------------------------------
    let d2h_before_results = gpu.d2h_seconds;
    let dl_ts = gpu.total_seconds();
    let values = gpu.try_download(&vertex_values)?;
    cfg.trace.complete(
        0,
        lanes::ENGINE,
        "engine",
        "download",
        dl_ts,
        gpu.total_seconds() - dl_ts,
    );
    total.converged = converged;
    total.kernel.name = desc.name.clone();
    total.h2d_seconds = h2d_initial;
    total.compute_seconds =
        gpu.kernel_seconds + (gpu.h2d_seconds - h2d_initial) + d2h_before_results;
    total.d2h_seconds = gpu.d2h_seconds - d2h_before_results;
    total.memo.add(&cusha_core::MemoStats::from_gpu(gpu));
    total.profile = gpu.profile.take();
    if !converged {
        return Err(EngineError::NonConverged {
            partial: Box::new(CuShaOutput {
                values,
                stats: total,
            }),
        });
    }
    Ok(VwcOutput {
        values,
        stats: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_algos::bfs::{bfs_levels, Bfs};
    use cusha_algos::sssp::{dijkstra, Sssp};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::Edge;

    #[test]
    fn bfs_matches_oracle_for_every_virtual_warp_size() {
        let g = rmat(&RmatConfig::graph500(7, 700, 30));
        let oracle = bfs_levels(&g, 0);
        for vw in crate::VIRTUAL_WARP_SIZES {
            let out = run_vwc(&Bfs::new(0), &g, &VwcConfig::new(vw));
            assert!(out.stats.converged, "vw={vw}");
            assert_eq!(out.values, oracle, "vw={vw}");
        }
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = rmat(&RmatConfig::graph500(7, 600, 31));
        let oracle = dijkstra(&g, 0);
        let out = run_vwc(&Sssp::new(0), &g, &VwcConfig::new(8));
        assert_eq!(out.values, oracle);
    }

    #[test]
    fn nonstandard_block_sizes_work() {
        let g = rmat(&RmatConfig::graph500(7, 700, 35));
        let oracle = bfs_levels(&g, 0);
        for tpb in [64u32, 128, 512] {
            let mut cfg = VwcConfig::new(8);
            cfg.threads_per_block = tpb;
            let out = run_vwc(&Bfs::new(0), &g, &cfg);
            assert_eq!(out.values, oracle, "tpb={tpb}");
        }
    }

    #[test]
    fn empty_graph_converges() {
        let g = Graph::empty(10);
        let out = run_vwc(&Bfs::new(0), &g, &VwcConfig::new(4));
        assert!(out.stats.converged);
        assert_eq!(out.stats.iterations, 1);
    }

    #[test]
    fn store_efficiency_is_poor_as_in_the_paper() {
        // Only leader lanes write: Table 2 / Figure 8's ~2% store
        // efficiency effect. With vw=32 a warp writes <= 1 value.
        let g = rmat(&RmatConfig::graph500(8, 3000, 32));
        let out = run_vwc(&Sssp::new(0), &g, &VwcConfig::new(32));
        let gst = out.stats.kernel.gst_efficiency();
        assert!(gst < 0.20, "VWC store efficiency should be low, got {gst}");
    }

    #[test]
    fn gather_load_efficiency_is_poor() {
        let g = rmat(&RmatConfig::graph500(8, 3000, 33));
        let out = run_vwc(&Sssp::new(0), &g, &VwcConfig::new(8));
        let gld = out.stats.kernel.gld_efficiency();
        assert!(
            gld < 0.60,
            "VWC load efficiency should be limited, got {gld}"
        );
    }

    #[test]
    fn outlier_deferral_preserves_results() {
        let g = rmat(&RmatConfig::graph500(8, 3000, 34));
        let plain = run_vwc(&Sssp::new(0), &g, &VwcConfig::new(4));
        let deferred = run_vwc(
            &Sssp::new(0),
            &g,
            &VwcConfig::new(4).with_outlier_deferral(16),
        );
        assert_eq!(plain.values, deferred.values);
        assert!(deferred.stats.converged);
    }

    #[test]
    fn outlier_deferral_improves_warp_efficiency_on_skewed_graphs() {
        // A few extreme hubs among small-degree vertices: with vw=2, hub
        // processing serializes a physical warp for hundreds of steps
        // unless deferred to a full-warp pass.
        let mut edges: Vec<Edge> = Vec::new();
        for v in 1..800u32 {
            edges.push(Edge::new(v, v % 4, 1)); // 4 hubs
            edges.push(Edge::new(v, (v + 1) % 800, 1));
        }
        let g = Graph::new(800, edges);
        let prog = Sssp::new(5);
        let plain = run_vwc(&prog, &g, &VwcConfig::new(2));
        let deferred = run_vwc(&prog, &g, &VwcConfig::new(2).with_outlier_deferral(32));
        assert_eq!(plain.values, deferred.values);
        let e_plain = plain.stats.kernel.warp_execution_efficiency();
        let e_def = deferred.stats.kernel.warp_execution_efficiency();
        assert!(
            e_def > e_plain,
            "deferral should raise warp efficiency: {e_plain:.3} -> {e_def:.3}"
        );
    }

    #[test]
    fn tracer_records_iteration_kernel_and_phase_spans() {
        use cusha_obs::trace::Ph;
        let g = rmat(&RmatConfig::graph500(7, 600, 36));
        let tracer = Tracer::enabled();
        let cfg = VwcConfig::new(8).with_tracer(tracer.clone());
        let out = run_vwc(&Sssp::new(0), &g, &cfg);
        tracer.with_events(|events| {
            let iters = events
                .iter()
                .filter(|e| e.name == "iteration" && e.ph == Ph::Complete)
                .count();
            assert_eq!(iters as u32, out.stats.iterations);
            for phase in ["sisd", "sweep", "reduce", "publish"] {
                assert!(
                    events.iter().any(|e| e.cat == "phase" && e.name == phase),
                    "missing phase span {phase}"
                );
            }
            assert!(events.iter().any(|e| e.cat == "kernel"));
        });
        // Tracing must not perturb results or the modeled clock.
        let plain = run_vwc(&Sssp::new(0), &g, &VwcConfig::new(8));
        assert_eq!(out.values, plain.values);
        assert_eq!(
            out.stats.total_seconds().to_bits(),
            plain.stats.total_seconds().to_bits()
        );
    }

    #[test]
    fn degree_skew_causes_divergence() {
        // A hub vertex amid low-degree vertices forces idle lanes.
        let mut edges: Vec<Edge> = (1..64).map(|v| Edge::new(v, 0, 1)).collect();
        edges.extend((1..63).map(|v| Edge::new(v, v + 1, 1)));
        let g = Graph::new(64, edges);
        let out = run_vwc(&Bfs::new(1), &g, &VwcConfig::new(8));
        let wee = out.stats.kernel.warp_execution_efficiency();
        assert!(wee < 0.9, "expected divergence, got efficiency {wee}");
        assert_eq!(out.values, bfs_levels(&g, 1));
    }

    use cusha_graph::Graph;
}
