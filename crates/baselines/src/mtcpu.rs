//! The multithreaded CPU CSR baseline (paper Section 5.1, "MTCPU-CSR").
//!
//! A pthreads-style engine: `t` OS threads each own a contiguous range of
//! vertices (adjacent in the CSR, as the paper specifies) and sweep their
//! range every iteration, reading neighbour values from a shared
//! lock-free array and writing only their own vertices. A barrier separates
//! iterations; a relaxed atomic flag detects convergence. Times are real
//! wall-clock measurements on the host.
//!
//! Values are stored as `AtomicU64` bit patterns ([`Value::to_bits`]); all
//! cross-thread accesses are relaxed atomics, which is sound here because
//! every algorithm tolerates reading a neighbour's value from either the
//! current or the previous sweep (the usual asynchronous-iteration
//! argument, and exactly what the racy pthreads original does — minus the
//! undefined behaviour).

use cusha_core::{
    CuShaOutput, EngineError, IterationStat, NoopObserver, RunObserver, RunStats, Value,
    VertexProgram,
};
use cusha_graph::{Csr, Graph};
use cusha_obs::trace::{lanes, ArgVal, Tracer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// MTCPU-CSR configuration.
#[derive(Clone, Debug)]
pub struct MtcpuConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Convergence-loop safety cap.
    pub max_iterations: u32,
    /// Span/event tracer; disabled (no-op, zero-cost) by default. The CPU
    /// engine has no modeled clock, so iteration spans are reconstructed
    /// post-hoc from measured wall time.
    pub trace: Tracer,
}

impl MtcpuConfig {
    /// `threads` workers, default iteration cap.
    pub fn new(threads: usize) -> Self {
        MtcpuConfig {
            threads,
            max_iterations: 10_000,
            trace: Tracer::disabled(),
        }
    }

    /// Installs a tracer recording spans of the run.
    pub fn with_tracer(mut self, trace: Tracer) -> Self {
        self.trace = trace;
        self
    }
}

/// Output of an MTCPU run.
#[derive(Clone, Debug)]
pub struct MtcpuOutput<V> {
    /// Final vertex values.
    pub values: Vec<V>,
    /// Run statistics (wall-clock compute time; no transfer components).
    pub stats: RunStats,
}

/// Executes `prog` over `graph` with `cfg.threads` CPU threads.
pub fn run_mtcpu<P: VertexProgram>(
    prog: &P,
    graph: &Graph,
    cfg: &MtcpuConfig,
) -> MtcpuOutput<P::V> {
    assert!(cfg.threads > 0, "need at least one thread");
    match try_run_mtcpu(prog, graph, cfg, &mut NoopObserver) {
        Ok(out) => out,
        Err(EngineError::NonConverged { partial }) => MtcpuOutput {
            values: partial.values,
            stats: partial.stats,
        },
        Err(e) => panic!("{e}"),
    }
}

/// [`run_mtcpu`] with a [`RunObserver`] consulted after every non-converged
/// sweep and every failure surfaced as an [`EngineError`].
///
/// The observer is `!Send`, so the calling thread runs worker 0 — the
/// convergence coordinator — inline instead of spawning it: after each
/// barrier it evaluates the stop condition and, when continuing, consults
/// the observer with real wall-clock elapsed time. A `false` return halts
/// every worker at the next barrier and surfaces as
/// [`EngineError::Deadline`]. This engine runs on host memory, outside the
/// device fault domain, so there is no fault plan to thread.
pub fn try_run_mtcpu<P: VertexProgram, O: RunObserver + ?Sized>(
    prog: &P,
    graph: &Graph,
    cfg: &MtcpuConfig,
    observer: &mut O,
) -> Result<MtcpuOutput<P::V>, EngineError<P::V>> {
    if cfg.threads == 0 {
        return Err(EngineError::InvalidConfig(
            "need at least one thread".into(),
        ));
    }
    let csr = Csr::from_graph(graph);
    let statics = prog.static_values(graph);
    let edge_values: Vec<P::E> = {
        let by_edge_id = prog.edge_values(graph);
        csr.edge_ids()
            .iter()
            .map(|&id| by_edge_id[id as usize])
            .collect()
    };
    let n = graph.num_vertices() as usize;
    let values: Vec<AtomicU64> = (0..graph.num_vertices())
        .map(|v| AtomicU64::new(prog.initial_value(v).to_bits()))
        .collect();

    // Contiguous range per thread, remainder spread over the first ranges.
    let t = cfg.threads.min(n.max(1));
    let base = n / t;
    let extra = n % t;
    let range_of = |i: usize| {
        let lo = i * base + i.min(extra);
        let hi = lo + base + usize::from(i < extra);
        lo..hi
    };

    let barrier = Barrier::new(t);
    let changed = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let cancelled = AtomicBool::new(false);
    let iterations = AtomicU64::new(0);
    let updated_counts: Vec<AtomicU64> = (0..cfg.max_iterations as usize)
        .map(|_| AtomicU64::new(0))
        .collect();

    // One sweep of a worker's vertex range; returns its update count.
    let sweep = |range: std::ops::Range<usize>| -> u64 {
        let mut local_updates = 0u64;
        for v in range {
            let old = P::V::from_bits(values[v].load(Ordering::Relaxed));
            let mut local = P::V::default();
            prog.init_compute(&mut local, &old);
            for slot in csr.in_range(v as u32) {
                let src = csr.src_indxs()[slot] as usize;
                let src_val = P::V::from_bits(values[src].load(Ordering::Relaxed));
                prog.compute(&src_val, &statics[src], &edge_values[slot], &mut local);
            }
            if prog.update_condition(&mut local, &old) {
                values[v].store(local.to_bits(), Ordering::Relaxed);
                local_updates += 1;
            }
        }
        local_updates
    };

    let start = Instant::now();
    std::thread::scope(|scope| {
        for i in 1..t {
            let range = range_of(i);
            let sweep = &sweep;
            let barrier = &barrier;
            let changed = &changed;
            let stop = &stop;
            let updated_counts = &updated_counts;
            scope.spawn(move || {
                let mut iter = 0usize;
                loop {
                    let local_updates = sweep(range.clone());
                    if local_updates > 0 {
                        changed.store(true, Ordering::Relaxed);
                        updated_counts[iter].fetch_add(local_updates, Ordering::Relaxed);
                    }
                    barrier.wait();
                    // Worker 0 evaluates the stop condition between barriers.
                    barrier.wait();
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    iter += 1;
                }
            });
        }
        // Worker 0 — the convergence coordinator — runs on the calling
        // thread so it can consult the (thread-bound) observer.
        let range = range_of(0);
        let mut iter = 0usize;
        loop {
            let local_updates = sweep(range.clone());
            if local_updates > 0 {
                changed.store(true, Ordering::Relaxed);
                updated_counts[iter].fetch_add(local_updates, Ordering::Relaxed);
            }
            barrier.wait();
            iterations.fetch_add(1, Ordering::Relaxed);
            let any = changed.swap(false, Ordering::Relaxed);
            let cap = iter + 1 >= cfg.max_iterations as usize;
            let mut halt = !any || cap;
            if !halt {
                let updated = updated_counts[iter].load(Ordering::Relaxed);
                let elapsed = start.elapsed().as_secs_f64();
                if !observer.on_iteration((iter + 1) as u32, updated, elapsed) {
                    cancelled.store(true, Ordering::Relaxed);
                    halt = true;
                }
            }
            stop.store(halt, Ordering::Relaxed);
            barrier.wait();
            if stop.load(Ordering::Relaxed) {
                break;
            }
            iter += 1;
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let iters = iterations.load(Ordering::Relaxed) as u32;
    if cancelled.load(Ordering::Relaxed) {
        return Err(EngineError::Deadline {
            iterations: iters,
            elapsed_seconds: elapsed,
        });
    }
    let per_iteration: Vec<IterationStat> = (0..iters as usize)
        .map(|k| IterationStat {
            seconds: elapsed / iters.max(1) as f64,
            updated_vertices: updated_counts[k].load(Ordering::Relaxed),
        })
        .collect();
    let converged = iters < cfg.max_iterations
        || per_iteration
            .last()
            .map(|s| s.updated_vertices == 0)
            .unwrap_or(true);
    let out_values: Vec<P::V> = values
        .iter()
        .map(|a| P::V::from_bits(a.load(Ordering::Relaxed)))
        .collect();
    if cfg.trace.is_enabled() {
        cfg.trace.name_process(0, "mtcpu");
        cfg.trace.name_lane(0, lanes::ENGINE, "engine");
        let mut cursor = 0.0f64;
        for (k, it) in per_iteration.iter().enumerate() {
            cfg.trace.complete_with(
                0,
                lanes::ENGINE,
                "engine",
                "iteration",
                cursor,
                it.seconds,
                || {
                    vec![
                        ("iteration", ArgVal::U64(k as u64)),
                        ("updated_vertices", ArgVal::U64(it.updated_vertices)),
                    ]
                },
            );
            cursor += it.seconds;
            cfg.trace.counter(
                0,
                lanes::ENGINE,
                "updated_vertices",
                cursor,
                it.updated_vertices as f64,
            );
        }
    }
    let stats = RunStats {
        engine: format!("MTCPU-CSR/{}", cfg.threads),
        iterations: iters,
        converged,
        compute_seconds: elapsed,
        per_iteration,
        ..Default::default()
    };
    if !converged {
        return Err(EngineError::NonConverged {
            partial: Box::new(CuShaOutput {
                values: out_values,
                stats,
            }),
        });
    }
    Ok(MtcpuOutput {
        values: out_values,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_algos::assert_approx_eq;
    use cusha_algos::bfs::{bfs_levels, Bfs};
    use cusha_algos::pagerank::{pagerank_power_iteration, PageRank};
    use cusha_algos::sssp::{dijkstra, Sssp};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::Graph;

    #[test]
    fn single_thread_matches_oracles() {
        let g = rmat(&RmatConfig::graph500(7, 800, 40));
        let bfs = run_mtcpu(&Bfs::new(0), &g, &MtcpuConfig::new(1));
        assert!(bfs.stats.converged);
        assert_eq!(bfs.values, bfs_levels(&g, 0));
        let sssp = run_mtcpu(&Sssp::new(0), &g, &MtcpuConfig::new(1));
        assert_eq!(sssp.values, dijkstra(&g, 0));
    }

    #[test]
    fn many_threads_match_oracles() {
        let g = rmat(&RmatConfig::graph500(8, 2000, 41));
        let oracle = bfs_levels(&g, 0);
        for t in [2, 4, 8, 16] {
            let out = run_mtcpu(&Bfs::new(0), &g, &MtcpuConfig::new(t));
            assert!(out.stats.converged, "t={t}");
            assert_eq!(out.values, oracle, "t={t}");
        }
    }

    #[test]
    fn more_threads_than_vertices_is_fine() {
        let g = rmat(&RmatConfig::graph500(3, 20, 42));
        let out = run_mtcpu(&Bfs::new(0), &g, &MtcpuConfig::new(64));
        assert_eq!(out.values, bfs_levels(&g, 0));
    }

    #[test]
    fn pagerank_parallel_matches_power_iteration() {
        let g = rmat(&RmatConfig::graph500(7, 600, 43));
        let oracle = pagerank_power_iteration(&g, 1e-9, 100_000);
        let out = run_mtcpu(&PageRank::with_tolerance(1e-5), &g, &MtcpuConfig::new(4));
        assert!(out.stats.converged);
        assert_approx_eq(&out.values, &oracle, 2e-3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        let out = run_mtcpu(&Bfs::new(0), &g, &MtcpuConfig::new(4));
        assert!(out.stats.converged);
        assert_eq!(out.stats.iterations, 1);
    }

    #[test]
    fn stats_measure_real_time() {
        let g = rmat(&RmatConfig::graph500(8, 2000, 44));
        let out = run_mtcpu(&Sssp::new(0), &g, &MtcpuConfig::new(2));
        assert!(out.stats.compute_seconds > 0.0);
        assert_eq!(out.stats.h2d_seconds, 0.0);
        assert_eq!(out.stats.per_iteration.len(), out.stats.iterations as usize);
    }

    #[test]
    fn tracer_reconstructs_iteration_spans() {
        use cusha_obs::trace::Ph;
        let g = rmat(&RmatConfig::graph500(7, 600, 45));
        let tracer = Tracer::enabled();
        let out = run_mtcpu(
            &Sssp::new(0),
            &g,
            &MtcpuConfig::new(2).with_tracer(tracer.clone()),
        );
        tracer.with_events(|events| {
            let iters = events
                .iter()
                .filter(|e| e.name == "iteration" && e.ph == Ph::Complete)
                .count();
            assert_eq!(iters as u32, out.stats.iterations);
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let g = Graph::empty(1);
        let _ = run_mtcpu(&Bfs::new(0), &g, &MtcpuConfig::new(0));
    }
}
