#![warn(missing_docs)]

//! The comparison baselines of the paper's evaluation (Section 5.1).
//!
//! * [`vwc`] — **VWC-CSR**: the virtual warp-centric method of Hong et al.
//!   (paper reference \[12\], pseudo-code in the paper's Appendix A), running
//!   on the same simulated GPU as CuSha, over the in-edge CSR
//!   representation, with virtual warp sizes 2/4/8/16/32.
//! * [`mtcpu`] — **MTCPU-CSR**: the pthreads-style multithreaded CPU
//!   implementation (1–128 threads, static contiguous vertex partitioning),
//!   measured in real wall-clock time on the host.
//!
//! Both consume the same [`cusha_core::VertexProgram`] definitions as the
//! CuSha engine, so all engines compute the same function and can be
//! cross-checked in tests.

pub mod engines;
pub mod mtcpu;
pub mod vwc;

pub use engines::{MtcpuEngine, VwcEngine};
pub use mtcpu::{run_mtcpu, try_run_mtcpu, MtcpuConfig};
pub use vwc::{run_vwc, try_run_vwc, VwcConfig};

/// The virtual warp sizes the paper sweeps for VWC-CSR.
pub const VIRTUAL_WARP_SIZES: [usize; 5] = [2, 4, 8, 16, 32];

/// The CPU thread counts the paper sweeps for MTCPU-CSR.
pub const MTCPU_THREADS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
