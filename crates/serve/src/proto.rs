//! The service wire protocol: line-delimited JSON plus a terse REPL form.
//!
//! One request per line, one typed response line per query — never zero,
//! never two. Lines starting with `{` are JSON objects; anything else is
//! the REPL shorthand (`bfs 5`, `reach 1 2 3`, `flush`, `quit`). Blank
//! lines and `#` comments are ignored.
//!
//! The JSON layer is the hand-rolled [`cusha_obs::json`] value parser
//! (objects, arrays, strings, numbers, booleans, null — the workspace
//! builds without external crates), re-exported here for protocol users.

use cusha_graph::{MutationBatch, VertexId};

pub use cusha_obs::json::{parse_json, Json};

/// What one input line asks the service to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A graph query to admit.
    Query(Query),
    /// A live edge-mutation batch to commit.
    Mutate(MutateRequest),
    /// Run everything queued.
    Flush,
    /// Report service counters.
    Stats,
    /// Flush, then stop reading.
    Shutdown,
    /// Nothing (blank line or comment).
    Empty,
}

/// A live-mutation request: an all-or-nothing batch of edge inserts and
/// deletes, committed through the WAL (when one is configured) before it
/// touches the in-memory graph.
#[derive(Clone, Debug, PartialEq)]
pub struct MutateRequest {
    /// Client-chosen id echoed in the response (`Json::Null` = let the
    /// service assign a sequence number).
    pub id: Json,
    /// The ordered batch.
    pub batch: MutationBatch,
}

/// A single admitted-or-shed unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Client-chosen id echoed in the response (`Json::Null` = let the
    /// service assign a sequence number).
    pub id: Json,
    /// The operation.
    pub op: QueryOp,
    /// Per-query modeled-time deadline, milliseconds.
    pub deadline_ms: Option<f64>,
    /// Whether the response should carry the full value vector.
    pub want_values: bool,
}

/// The operations the service answers.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOp {
    /// A valued single-source traversal (fusable two-per-launch).
    Traversal {
        /// Which traversal.
        kind: cusha_algos::TraversalKind,
        /// Source vertex.
        source: VertexId,
    },
    /// Multi-source reachability (up to 64 sources, bitset-packed with
    /// other `reach` queries in the same batch).
    Reach {
        /// Source vertices.
        sources: Vec<VertexId>,
    },
    /// Whole-graph PageRank refresh.
    PageRank,
    /// Whole-graph connected-components refresh.
    ConnectedComponents,
}

impl QueryOp {
    /// Wire label of the operation.
    pub fn label(&self) -> &'static str {
        match self {
            QueryOp::Traversal { kind, .. } => kind.label(),
            QueryOp::Reach { .. } => "reach",
            QueryOp::PageRank => "pagerank",
            QueryOp::ConnectedComponents => "cc",
        }
    }
}

/// Parses one input line (JSON or REPL shorthand) into a [`Request`].
pub fn parse_line(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Request::Empty);
    }
    if line.starts_with('{') {
        parse_json_request(line)
    } else {
        parse_repl_request(line)
    }
}

fn parse_json_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\" field")?;
    match op {
        "flush" => return Ok(Request::Flush),
        "stats" => return Ok(Request::Stats),
        "shutdown" | "quit" => return Ok(Request::Shutdown),
        "mutate" => return parse_mutate(&v),
        _ => {}
    }
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => {
            let d = d.as_f64().ok_or("\"deadline_ms\" must be a number")?;
            if d.is_nan() || d <= 0.0 {
                return Err("\"deadline_ms\" must be positive".into());
            }
            Some(d)
        }
    };
    let want_values = v
        .get("values")
        .map(|b| b.as_bool().ok_or("\"values\" must be a boolean"))
        .transpose()?
        .unwrap_or(false);
    let source = || -> Result<VertexId, String> {
        v.get("source")
            .and_then(Json::as_u64)
            .filter(|&s| s <= u32::MAX as u64)
            .map(|s| s as VertexId)
            .ok_or_else(|| format!("op {op:?} needs a \"source\" vertex id"))
    };
    let op = if let Some(kind) = cusha_algos::TraversalKind::parse(op) {
        QueryOp::Traversal {
            kind,
            source: source()?,
        }
    } else {
        match op {
            "reach" => {
                let arr = match v.get("sources") {
                    Some(Json::Arr(items)) => items,
                    _ => return Err("op \"reach\" needs a \"sources\" array".into()),
                };
                let sources: Option<Vec<VertexId>> = arr
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .filter(|&s| s <= u32::MAX as u64)
                            .map(|s| s as VertexId)
                    })
                    .collect();
                QueryOp::Reach {
                    sources: sources.ok_or("\"sources\" must be vertex ids")?,
                }
            }
            "pagerank" | "pr" => QueryOp::PageRank,
            "cc" => QueryOp::ConnectedComponents,
            other => return Err(format!("unknown op {other:?}")),
        }
    };
    Ok(Request::Query(Query {
        id,
        op,
        deadline_ms,
        want_values,
    }))
}

/// Parses `{"op":"mutate","insert":[[src,dst,weight],...],"delete":[[src,dst],...]}`.
/// Insert triples may omit the weight (defaults to 1); ops apply inserts
/// before deletes, each array in order.
fn parse_mutate(v: &Json) -> Result<Request, String> {
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let vertex = |x: &Json, what: &str| -> Result<VertexId, String> {
        x.as_u64()
            .filter(|&s| s <= u32::MAX as u64)
            .map(|s| s as VertexId)
            .ok_or_else(|| format!("{what} must be a vertex id"))
    };
    let mut batch = MutationBatch::new();
    if let Some(arr) = v.get("insert") {
        let items = match arr {
            Json::Arr(items) => items,
            _ => return Err("\"insert\" must be an array of [src, dst, weight?]".into()),
        };
        for item in items {
            let t = match item {
                Json::Arr(t) if t.len() == 2 || t.len() == 3 => t,
                _ => return Err("each insert must be [src, dst] or [src, dst, weight]".into()),
            };
            let weight = match t.get(2) {
                None => 1,
                Some(w) => w
                    .as_u64()
                    .filter(|&w| w <= u32::MAX as u64)
                    .ok_or("insert weight must be a u32")? as u32,
            };
            batch = batch.insert(
                vertex(&t[0], "insert src")?,
                vertex(&t[1], "insert dst")?,
                weight,
            );
        }
    }
    if let Some(arr) = v.get("delete") {
        let items = match arr {
            Json::Arr(items) => items,
            _ => return Err("\"delete\" must be an array of [src, dst]".into()),
        };
        for item in items {
            let t = match item {
                Json::Arr(t) if t.len() == 2 => t,
                _ => return Err("each delete must be [src, dst]".into()),
            };
            batch = batch.delete(vertex(&t[0], "delete src")?, vertex(&t[1], "delete dst")?);
        }
    }
    if batch.ops.is_empty() {
        return Err("op \"mutate\" needs a non-empty \"insert\" and/or \"delete\" array".into());
    }
    Ok(Request::Mutate(MutateRequest { id, batch }))
}

fn parse_repl_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let head = words.next().expect("line is non-empty");
    let rest: Vec<&str> = words.collect();
    let sources = || -> Result<Vec<VertexId>, String> {
        rest.iter()
            .map(|w| w.parse::<u32>().map_err(|_| format!("bad vertex id {w:?}")))
            .collect()
    };
    let one_source = || -> Result<VertexId, String> {
        match sources()?.as_slice() {
            [s] => Ok(*s),
            _ => Err(format!("usage: {head} <source>")),
        }
    };
    let q = |op: QueryOp| {
        Ok(Request::Query(Query {
            id: Json::Null,
            op,
            deadline_ms: None,
            want_values: false,
        }))
    };
    match head {
        "flush" => Ok(Request::Flush),
        "stats" => Ok(Request::Stats),
        "quit" | "exit" | "shutdown" => Ok(Request::Shutdown),
        "insert" => {
            let (src, dst, weight) = match sources()?.as_slice() {
                [s, d] => (*s, *d, 1),
                [s, d, w] => (*s, *d, *w),
                _ => return Err("usage: insert <src> <dst> [weight]".into()),
            };
            Ok(Request::Mutate(MutateRequest {
                id: Json::Null,
                batch: MutationBatch::new().insert(src, dst, weight),
            }))
        }
        "delete" => match sources()?.as_slice() {
            [s, d] => Ok(Request::Mutate(MutateRequest {
                id: Json::Null,
                batch: MutationBatch::new().delete(*s, *d),
            })),
            _ => Err("usage: delete <src> <dst>".into()),
        },
        "bfs" | "sssp" | "sswp" => q(QueryOp::Traversal {
            kind: cusha_algos::TraversalKind::parse(head).expect("matched above"),
            source: one_source()?,
        }),
        "reach" => q(QueryOp::Reach {
            sources: sources()?,
        }),
        "pagerank" | "pr" => q(QueryOp::PageRank),
        "cc" => q(QueryOp::ConnectedComponents),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_algos::TraversalKind;

    #[test]
    fn query_lines_parse() {
        let r = parse_line(r#"{"id":7,"op":"sssp","source":5,"deadline_ms":2.5}"#).unwrap();
        match r {
            Request::Query(q) => {
                assert_eq!(q.id, Json::Num(7.0));
                assert_eq!(q.deadline_ms, Some(2.5));
                assert_eq!(
                    q.op,
                    QueryOp::Traversal {
                        kind: TraversalKind::Sssp,
                        source: 5
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_line("flush").unwrap(), Request::Flush);
        assert_eq!(parse_line("  # comment").unwrap(), Request::Empty);
        assert_eq!(parse_line("").unwrap(), Request::Empty);
        assert_eq!(
            parse_line(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn repl_lines_parse() {
        match parse_line("bfs 12").unwrap() {
            Request::Query(q) => assert_eq!(
                q.op,
                QueryOp::Traversal {
                    kind: TraversalKind::Bfs,
                    source: 12
                }
            ),
            other => panic!("{other:?}"),
        }
        match parse_line("reach 1 2 3").unwrap() {
            Request::Query(q) => assert_eq!(
                q.op,
                QueryOp::Reach {
                    sources: vec![1, 2, 3]
                }
            ),
            other => panic!("{other:?}"),
        }
        assert!(parse_line("bfs").is_err());
        assert!(parse_line("warp 9").is_err());
    }

    #[test]
    fn mutate_lines_parse() {
        let r = parse_line(r#"{"id":3,"op":"mutate","insert":[[1,2,9],[4,5]],"delete":[[0,1]]}"#)
            .unwrap();
        match r {
            Request::Mutate(m) => {
                assert_eq!(m.id, Json::Num(3.0));
                assert_eq!(
                    m.batch,
                    MutationBatch::new()
                        .insert(1, 2, 9)
                        .insert(4, 5, 1)
                        .delete(0, 1)
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_line("insert 7 8").unwrap(),
            Request::Mutate(MutateRequest {
                id: Json::Null,
                batch: MutationBatch::new().insert(7, 8, 1),
            })
        );
        assert_eq!(
            parse_line("delete 7 8").unwrap(),
            Request::Mutate(MutateRequest {
                id: Json::Null,
                batch: MutationBatch::new().delete(7, 8),
            })
        );
        assert!(parse_line(r#"{"op":"mutate"}"#).is_err());
        assert!(parse_line(r#"{"op":"mutate","insert":[[1]]}"#).is_err());
        assert!(parse_line("insert 7").is_err());
        assert!(parse_line("delete 7 8 9").is_err());
    }

    #[test]
    fn bad_deadlines_are_rejected() {
        assert!(parse_line(r#"{"op":"bfs","source":1,"deadline_ms":0}"#).is_err());
        assert!(parse_line(r#"{"op":"bfs","source":1,"deadline_ms":-4}"#).is_err());
    }
}
