//! The service wire protocol: line-delimited JSON plus a terse REPL form.
//!
//! One request per line, one typed response line per query — never zero,
//! never two. Lines starting with `{` are JSON objects; anything else is
//! the REPL shorthand (`bfs 5`, `reach 1 2 3`, `flush`, `quit`). Blank
//! lines and `#` comments are ignored.
//!
//! The JSON layer is the hand-rolled [`cusha_obs::json`] value parser
//! (objects, arrays, strings, numbers, booleans, null — the workspace
//! builds without external crates), re-exported here for protocol users.

use cusha_graph::VertexId;

pub use cusha_obs::json::{parse_json, Json};

/// What one input line asks the service to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A graph query to admit.
    Query(Query),
    /// Run everything queued.
    Flush,
    /// Report service counters.
    Stats,
    /// Flush, then stop reading.
    Shutdown,
    /// Nothing (blank line or comment).
    Empty,
}

/// A single admitted-or-shed unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Client-chosen id echoed in the response (`Json::Null` = let the
    /// service assign a sequence number).
    pub id: Json,
    /// The operation.
    pub op: QueryOp,
    /// Per-query modeled-time deadline, milliseconds.
    pub deadline_ms: Option<f64>,
    /// Whether the response should carry the full value vector.
    pub want_values: bool,
}

/// The operations the service answers.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOp {
    /// A valued single-source traversal (fusable two-per-launch).
    Traversal {
        /// Which traversal.
        kind: cusha_algos::TraversalKind,
        /// Source vertex.
        source: VertexId,
    },
    /// Multi-source reachability (up to 64 sources, bitset-packed with
    /// other `reach` queries in the same batch).
    Reach {
        /// Source vertices.
        sources: Vec<VertexId>,
    },
    /// Whole-graph PageRank refresh.
    PageRank,
    /// Whole-graph connected-components refresh.
    ConnectedComponents,
}

impl QueryOp {
    /// Wire label of the operation.
    pub fn label(&self) -> &'static str {
        match self {
            QueryOp::Traversal { kind, .. } => kind.label(),
            QueryOp::Reach { .. } => "reach",
            QueryOp::PageRank => "pagerank",
            QueryOp::ConnectedComponents => "cc",
        }
    }
}

/// Parses one input line (JSON or REPL shorthand) into a [`Request`].
pub fn parse_line(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Request::Empty);
    }
    if line.starts_with('{') {
        parse_json_request(line)
    } else {
        parse_repl_request(line)
    }
}

fn parse_json_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\" field")?;
    match op {
        "flush" => return Ok(Request::Flush),
        "stats" => return Ok(Request::Stats),
        "shutdown" | "quit" => return Ok(Request::Shutdown),
        _ => {}
    }
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => {
            let d = d.as_f64().ok_or("\"deadline_ms\" must be a number")?;
            if d.is_nan() || d <= 0.0 {
                return Err("\"deadline_ms\" must be positive".into());
            }
            Some(d)
        }
    };
    let want_values = v
        .get("values")
        .map(|b| b.as_bool().ok_or("\"values\" must be a boolean"))
        .transpose()?
        .unwrap_or(false);
    let source = || -> Result<VertexId, String> {
        v.get("source")
            .and_then(Json::as_u64)
            .filter(|&s| s <= u32::MAX as u64)
            .map(|s| s as VertexId)
            .ok_or_else(|| format!("op {op:?} needs a \"source\" vertex id"))
    };
    let op = if let Some(kind) = cusha_algos::TraversalKind::parse(op) {
        QueryOp::Traversal {
            kind,
            source: source()?,
        }
    } else {
        match op {
            "reach" => {
                let arr = match v.get("sources") {
                    Some(Json::Arr(items)) => items,
                    _ => return Err("op \"reach\" needs a \"sources\" array".into()),
                };
                let sources: Option<Vec<VertexId>> = arr
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .filter(|&s| s <= u32::MAX as u64)
                            .map(|s| s as VertexId)
                    })
                    .collect();
                QueryOp::Reach {
                    sources: sources.ok_or("\"sources\" must be vertex ids")?,
                }
            }
            "pagerank" | "pr" => QueryOp::PageRank,
            "cc" => QueryOp::ConnectedComponents,
            other => return Err(format!("unknown op {other:?}")),
        }
    };
    Ok(Request::Query(Query {
        id,
        op,
        deadline_ms,
        want_values,
    }))
}

fn parse_repl_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let head = words.next().expect("line is non-empty");
    let rest: Vec<&str> = words.collect();
    let sources = || -> Result<Vec<VertexId>, String> {
        rest.iter()
            .map(|w| w.parse::<u32>().map_err(|_| format!("bad vertex id {w:?}")))
            .collect()
    };
    let one_source = || -> Result<VertexId, String> {
        match sources()?.as_slice() {
            [s] => Ok(*s),
            _ => Err(format!("usage: {head} <source>")),
        }
    };
    let q = |op: QueryOp| {
        Ok(Request::Query(Query {
            id: Json::Null,
            op,
            deadline_ms: None,
            want_values: false,
        }))
    };
    match head {
        "flush" => Ok(Request::Flush),
        "stats" => Ok(Request::Stats),
        "quit" | "exit" | "shutdown" => Ok(Request::Shutdown),
        "bfs" | "sssp" | "sswp" => q(QueryOp::Traversal {
            kind: cusha_algos::TraversalKind::parse(head).expect("matched above"),
            source: one_source()?,
        }),
        "reach" => q(QueryOp::Reach {
            sources: sources()?,
        }),
        "pagerank" | "pr" => q(QueryOp::PageRank),
        "cc" => q(QueryOp::ConnectedComponents),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_algos::TraversalKind;

    #[test]
    fn query_lines_parse() {
        let r = parse_line(r#"{"id":7,"op":"sssp","source":5,"deadline_ms":2.5}"#).unwrap();
        match r {
            Request::Query(q) => {
                assert_eq!(q.id, Json::Num(7.0));
                assert_eq!(q.deadline_ms, Some(2.5));
                assert_eq!(
                    q.op,
                    QueryOp::Traversal {
                        kind: TraversalKind::Sssp,
                        source: 5
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_line("flush").unwrap(), Request::Flush);
        assert_eq!(parse_line("  # comment").unwrap(), Request::Empty);
        assert_eq!(parse_line("").unwrap(), Request::Empty);
        assert_eq!(
            parse_line(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn repl_lines_parse() {
        match parse_line("bfs 12").unwrap() {
            Request::Query(q) => assert_eq!(
                q.op,
                QueryOp::Traversal {
                    kind: TraversalKind::Bfs,
                    source: 12
                }
            ),
            other => panic!("{other:?}"),
        }
        match parse_line("reach 1 2 3").unwrap() {
            Request::Query(q) => assert_eq!(
                q.op,
                QueryOp::Reach {
                    sources: vec![1, 2, 3]
                }
            ),
            other => panic!("{other:?}"),
        }
        assert!(parse_line("bfs").is_err());
        assert!(parse_line("warp 9").is_err());
    }

    #[test]
    fn bad_deadlines_are_rejected() {
        assert!(parse_line(r#"{"op":"bfs","source":1,"deadline_ms":0}"#).is_err());
        assert!(parse_line(r#"{"op":"bfs","source":1,"deadline_ms":-4}"#).is_err());
    }
}
