//! The service wire protocol: line-delimited JSON plus a terse REPL form.
//!
//! One request per line, one typed response line per query — never zero,
//! never two. Lines starting with `{` are JSON objects; anything else is
//! the REPL shorthand (`bfs 5`, `reach 1 2 3`, `flush`, `quit`). Blank
//! lines and `#` comments are ignored.
//!
//! The JSON layer is hand-rolled against the small subset the protocol
//! needs (objects, arrays, strings, numbers, booleans, null) — the
//! workspace builds without external crates.

use cusha_graph::VertexId;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => cusha_obs::json::push_f64(out, *n),
            Json::Str(s) => cusha_obs::json::push_str_lit(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    cusha_obs::json::push_str_lit(out, k);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON value from `s` (the whole string must be consumed).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at offset {pos} is not a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex =
                                    b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape")?;
                                // Surrogate pairs are out of protocol scope.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err("bad escape".into()),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input came from &str).
                        let rest = s_from(b, *pos);
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at offset {start}"))
        }
    }
}

fn s_from(b: &[u8], pos: usize) -> &str {
    std::str::from_utf8(&b[pos..]).expect("input was a &str")
}

/// What one input line asks the service to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A graph query to admit.
    Query(Query),
    /// Run everything queued.
    Flush,
    /// Report service counters.
    Stats,
    /// Flush, then stop reading.
    Shutdown,
    /// Nothing (blank line or comment).
    Empty,
}

/// A single admitted-or-shed unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Client-chosen id echoed in the response (`Json::Null` = let the
    /// service assign a sequence number).
    pub id: Json,
    /// The operation.
    pub op: QueryOp,
    /// Per-query modeled-time deadline, milliseconds.
    pub deadline_ms: Option<f64>,
    /// Whether the response should carry the full value vector.
    pub want_values: bool,
}

/// The operations the service answers.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOp {
    /// A valued single-source traversal (fusable two-per-launch).
    Traversal {
        /// Which traversal.
        kind: cusha_algos::TraversalKind,
        /// Source vertex.
        source: VertexId,
    },
    /// Multi-source reachability (up to 64 sources, bitset-packed with
    /// other `reach` queries in the same batch).
    Reach {
        /// Source vertices.
        sources: Vec<VertexId>,
    },
    /// Whole-graph PageRank refresh.
    PageRank,
    /// Whole-graph connected-components refresh.
    ConnectedComponents,
}

impl QueryOp {
    /// Wire label of the operation.
    pub fn label(&self) -> &'static str {
        match self {
            QueryOp::Traversal { kind, .. } => kind.label(),
            QueryOp::Reach { .. } => "reach",
            QueryOp::PageRank => "pagerank",
            QueryOp::ConnectedComponents => "cc",
        }
    }
}

/// Parses one input line (JSON or REPL shorthand) into a [`Request`].
pub fn parse_line(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Request::Empty);
    }
    if line.starts_with('{') {
        parse_json_request(line)
    } else {
        parse_repl_request(line)
    }
}

fn parse_json_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\" field")?;
    match op {
        "flush" => return Ok(Request::Flush),
        "stats" => return Ok(Request::Stats),
        "shutdown" | "quit" => return Ok(Request::Shutdown),
        _ => {}
    }
    let id = v.get("id").cloned().unwrap_or(Json::Null);
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => {
            let d = d.as_f64().ok_or("\"deadline_ms\" must be a number")?;
            if d.is_nan() || d <= 0.0 {
                return Err("\"deadline_ms\" must be positive".into());
            }
            Some(d)
        }
    };
    let want_values = v
        .get("values")
        .map(|b| b.as_bool().ok_or("\"values\" must be a boolean"))
        .transpose()?
        .unwrap_or(false);
    let source = || -> Result<VertexId, String> {
        v.get("source")
            .and_then(Json::as_u64)
            .filter(|&s| s <= u32::MAX as u64)
            .map(|s| s as VertexId)
            .ok_or_else(|| format!("op {op:?} needs a \"source\" vertex id"))
    };
    let op = if let Some(kind) = cusha_algos::TraversalKind::parse(op) {
        QueryOp::Traversal {
            kind,
            source: source()?,
        }
    } else {
        match op {
            "reach" => {
                let arr = match v.get("sources") {
                    Some(Json::Arr(items)) => items,
                    _ => return Err("op \"reach\" needs a \"sources\" array".into()),
                };
                let sources: Option<Vec<VertexId>> = arr
                    .iter()
                    .map(|x| {
                        x.as_u64()
                            .filter(|&s| s <= u32::MAX as u64)
                            .map(|s| s as VertexId)
                    })
                    .collect();
                QueryOp::Reach {
                    sources: sources.ok_or("\"sources\" must be vertex ids")?,
                }
            }
            "pagerank" | "pr" => QueryOp::PageRank,
            "cc" => QueryOp::ConnectedComponents,
            other => return Err(format!("unknown op {other:?}")),
        }
    };
    Ok(Request::Query(Query {
        id,
        op,
        deadline_ms,
        want_values,
    }))
}

fn parse_repl_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let head = words.next().expect("line is non-empty");
    let rest: Vec<&str> = words.collect();
    let sources = || -> Result<Vec<VertexId>, String> {
        rest.iter()
            .map(|w| w.parse::<u32>().map_err(|_| format!("bad vertex id {w:?}")))
            .collect()
    };
    let one_source = || -> Result<VertexId, String> {
        match sources()?.as_slice() {
            [s] => Ok(*s),
            _ => Err(format!("usage: {head} <source>")),
        }
    };
    let q = |op: QueryOp| {
        Ok(Request::Query(Query {
            id: Json::Null,
            op,
            deadline_ms: None,
            want_values: false,
        }))
    };
    match head {
        "flush" => Ok(Request::Flush),
        "stats" => Ok(Request::Stats),
        "quit" | "exit" | "shutdown" => Ok(Request::Shutdown),
        "bfs" | "sssp" | "sswp" => q(QueryOp::Traversal {
            kind: cusha_algos::TraversalKind::parse(head).expect("matched above"),
            source: one_source()?,
        }),
        "reach" => q(QueryOp::Reach {
            sources: sources()?,
        }),
        "pagerank" | "pr" => q(QueryOp::PageRank),
        "cc" => q(QueryOp::ConnectedComponents),
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_algos::TraversalKind;

    #[test]
    fn json_round_trips() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":"x\ny","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        let mut out = String::new();
        v.render(&mut out);
        let again = parse_json(&out).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn query_lines_parse() {
        let r = parse_line(r#"{"id":7,"op":"sssp","source":5,"deadline_ms":2.5}"#).unwrap();
        match r {
            Request::Query(q) => {
                assert_eq!(q.id, Json::Num(7.0));
                assert_eq!(q.deadline_ms, Some(2.5));
                assert_eq!(
                    q.op,
                    QueryOp::Traversal {
                        kind: TraversalKind::Sssp,
                        source: 5
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_line("flush").unwrap(), Request::Flush);
        assert_eq!(parse_line("  # comment").unwrap(), Request::Empty);
        assert_eq!(parse_line("").unwrap(), Request::Empty);
        assert_eq!(
            parse_line(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn repl_lines_parse() {
        match parse_line("bfs 12").unwrap() {
            Request::Query(q) => assert_eq!(
                q.op,
                QueryOp::Traversal {
                    kind: TraversalKind::Bfs,
                    source: 12
                }
            ),
            other => panic!("{other:?}"),
        }
        match parse_line("reach 1 2 3").unwrap() {
            Request::Query(q) => assert_eq!(
                q.op,
                QueryOp::Reach {
                    sources: vec![1, 2, 3]
                }
            ),
            other => panic!("{other:?}"),
        }
        assert!(parse_line("bfs").is_err());
        assert!(parse_line("warp 9").is_err());
    }

    #[test]
    fn bad_deadlines_are_rejected() {
        assert!(parse_line(r#"{"op":"bfs","source":1,"deadline_ms":0}"#).is_err());
        assert!(parse_line(r#"{"op":"bfs","source":1,"deadline_ms":-4}"#).is_err());
    }
}
