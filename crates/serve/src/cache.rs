//! The service's LRU result cache.
//!
//! Keys are `(graph_rev, program, source_set, integrity_mode)` — every
//! input that determines a query's answer bit-for-bit. `graph_rev` is the
//! structural fingerprint of the loaded graph, so a reloaded or mutated
//! graph can never serve stale answers; `integrity_mode` is in the key
//! because a degraded mode is an observable contract, not an optimization
//! detail. Values are stored as 64-bit patterns ([`cusha_core::Value`]
//! bits), so one cache serves `u32`, `u64` and `f32` programs alike.

use std::collections::HashMap;

/// A cached, fully-converged query answer.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Iterations the original run took.
    pub iterations: u32,
    /// Modeled GPU seconds the original run took.
    pub modeled_seconds: f64,
    /// FNV-1a checksum of the value vector.
    pub checksum: u64,
    /// The value vector, as [`cusha_core::Value::to_bits`] patterns.
    pub value_bits: Vec<u64>,
}

/// Fixed-capacity LRU map from flat cache keys to results.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, (u64, CachedResult)>,
    hits: u64,
    misses: u64,
}

/// Builds the flat cache key.
pub fn cache_key(graph_rev: u64, program: &str, sources: &[u32], integrity: &str) -> String {
    let mut key = format!("{graph_rev:016x}/{program}/");
    for (i, s) in sources.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(&s.to_string());
    }
    key.push('/');
    key.push_str(integrity);
    key
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<CachedResult> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((stamp, result)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(result.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `result` under `key`, evicting the least-recently-used
    /// entry when full.
    pub fn put(&mut self, key: String, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, result));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every entry (the scrub path's cache hygiene).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops exactly the entries keyed on graph revision `rev`, returning
    /// how many went. This is the live-mutation invalidation path: a
    /// committed batch supersedes one revision, and only answers computed
    /// against that revision are stale — entries for the new revision
    /// (or, during a serve-previous window, the still-live old one) keep
    /// serving hits.
    pub fn invalidate_rev(&mut self, rev: u64) -> usize {
        let prefix = format!("{rev:016x}/");
        let before = self.entries.len();
        self.entries.retain(|k, _| !k.starts_with(&prefix));
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: u64) -> CachedResult {
        CachedResult {
            iterations: 1,
            modeled_seconds: 0.0,
            checksum: tag,
            value_bits: vec![tag],
        }
    }

    #[test]
    fn keys_distinguish_every_component() {
        let base = cache_key(1, "bfs", &[5], "off");
        assert_ne!(base, cache_key(2, "bfs", &[5], "off"));
        assert_ne!(base, cache_key(1, "sssp", &[5], "off"));
        assert_ne!(base, cache_key(1, "bfs", &[6], "off"));
        assert_ne!(base, cache_key(1, "bfs", &[5], "full"));
        // Source-set boundaries can't alias: [1, 23] vs [12, 3].
        assert_ne!(
            cache_key(1, "reach", &[1, 23], "off"),
            cache_key(1, "reach", &[12, 3], "off")
        );
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut c = ResultCache::new(2);
        c.put("a".into(), result(1));
        c.put("b".into(), result(2));
        assert!(c.get("a").is_some()); // refresh "a"; "b" is now coldest
        c.put("c".into(), result(3));
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.put("a".into(), result(1));
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
        assert_eq!(c.hit_miss(), (0, 1));
    }

    #[test]
    fn invalidation_is_scoped_to_one_revision() {
        let mut c = ResultCache::new(8);
        c.put(cache_key(1, "bfs", &[0], "off"), result(1));
        c.put(cache_key(1, "cc", &[], "off"), result(2));
        c.put(cache_key(2, "bfs", &[0], "off"), result(3));
        assert_eq!(c.invalidate_rev(1), 2);
        assert!(c.get(&cache_key(1, "bfs", &[0], "off")).is_none());
        assert!(c.get(&cache_key(2, "bfs", &[0], "off")).is_some());
        assert_eq!(c.invalidate_rev(1), 0);
    }

    #[test]
    fn hit_miss_counters_track() {
        let mut c = ResultCache::new(4);
        assert!(c.get("a").is_none());
        c.put("a".into(), result(1));
        assert!(c.get("a").is_some());
        assert_eq!(c.hit_miss(), (1, 1));
    }
}
