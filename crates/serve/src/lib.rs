#![warn(missing_docs)]

//! The resident CuSha query service.
//!
//! The engines in `cusha-core` are one-shot: build the shard layout, run
//! to convergence, exit. This crate keeps everything warm — the graph,
//! the G-Shards/CW layouts (one per value size), the fault-plan state,
//! a result cache — and answers a *stream* of queries through a CLI REPL
//! and a line-delimited JSON protocol (`cusha serve`):
//!
//! * [`proto`] — the wire protocol: hand-rolled JSON, request parsing,
//!   the REPL shorthand.
//! * [`admission`] — the bounded admission queue with typed load
//!   shedding (`rejected {reason}`, never a silent drop).
//! * [`cache`] — the LRU result cache keyed on
//!   `(graph_rev, program, source_set, integrity_mode)`.
//! * [`service`] — the service loop: fused query batching (two valued
//!   traversals per launch, up to 64 reach sources per launch),
//!   per-query deadlines enforced at iteration boundaries, fault retry
//!   with modeled backoff, blast-radius isolation by batch splitting,
//!   and warm-state scrubbing.
//! * [`telemetry`] — per-query serving records (queue wait, batch shape,
//!   warm/cold, retries, deadline slack), the sliding-window SLO tracker
//!   with burn rates, and the slow-query log behind `stats`/`--slow-log`.
//! * [`wal`] — the durable write-ahead mutation log: checksummed
//!   length-prefixed records, fsync-modeled commit points, snapshot
//!   compaction, torn-tail-truncating recovery, and deterministic
//!   crash-injection points for the recovery harness.
//!
//! ```
//! use cusha_graph::generators::rmat::{rmat, RmatConfig};
//! use cusha_serve::{run_session, ServeConfig, Service};
//!
//! let graph = rmat(&RmatConfig::graph500(8, 1_000, 42));
//! let mut svc = Service::new(graph, ServeConfig::default()).unwrap();
//! let mut out = Vec::new();
//! run_session(&mut svc, "bfs 0\nsssp 3\nflush\n".as_bytes(), &mut out).unwrap();
//! let text = String::from_utf8(out).unwrap();
//! assert!(text.contains("\"status\":\"ok\""));
//! ```

pub mod admission;
pub mod cache;
pub mod proto;
pub mod service;
pub mod telemetry;
pub mod wal;

pub use admission::{AdmissionQueue, ShedReason};
pub use cache::{cache_key, CachedResult, ResultCache};
pub use proto::{parse_json, parse_line, Json, MutateRequest, Query, QueryOp, Request};
pub use service::{
    graph_rev, run_session, RebuildPolicy, ServeConfig, ServeEngine, Service, WalConfig,
};
pub use telemetry::{
    QueryLog, QueryOutcome, QueryRecord, SloConfig, SloTracker, SlowQueryLog, Telemetry,
};
pub use wal::{CrashPoint, CrashSpec, RecoverySource, RecoveryStats, Wal, WalError, WalStats};
