//! Durable write-ahead log for live graph mutation.
//!
//! The service applies mutation batches to its in-memory graph; this module
//! makes those batches survive a crash. The protocol is the classic WAL
//! discipline:
//!
//! 1. append a `Batch` record and sync,
//! 2. append a `Commit` record and sync — **this is the commit point**,
//! 3. apply the batch in memory.
//!
//! A crash anywhere in that sequence is recoverable: on reopen,
//! [`Wal::open`] replays exactly the committed prefix. A record cut short
//! by the crash (a *torn tail*) is truncated away; a complete `Batch` with
//! no `Commit` behind it was never promised to the client and is discarded;
//! a complete record whose checksum does not match is **not** a crash
//! artifact but bit rot, and recovery refuses with [`WalError::Corrupt`]
//! rather than serve from a graph it cannot trust.
//!
//! File format: a 4-byte magic `CWAL`, then length-prefixed records
//! `[payload_len: u32 LE][kind: u8][payload][fnv1a: u64 LE]` where the
//! checksum covers the kind byte plus the payload. The first record is
//! always `Base { epoch, rev }` naming the graph revision the log starts
//! from; recovery matches that revision against the snapshot file (if any)
//! and the caller-supplied base graph, and replays on whichever matches.
//!
//! Compaction: every `snapshot_every` applied batches the current graph is
//! written to `<wal>.snap` (binary v2, temp-file + rename so the snapshot
//! is atomic), and the WAL is rewritten to a fresh `Base` record. A crash
//! between the snapshot rename and the WAL rewrite is benign: the old WAL's
//! base still matches the caller's base graph, and replay reproduces the
//! same revision the snapshot holds.
//!
//! Durability is modeled, not real: each sync point calls through to
//! [`File::sync_all`] *and* is counted so the service can charge
//! [`MODELED_FSYNC_S`] per sync to its modeled clock, keeping serve
//! latency accounting honest about what a commit costs.
//!
//! Crash injection: [`CrashSpec`] names a deterministic kill point
//! (`mid-record`, `pre-commit`, `pre-apply`) and a 1-based batch ordinal.
//! When [`Wal::commit_batch`] reaches that point it leaves the file byte-
//! for-byte as a real `SIGKILL` would — partial record synced, or batch
//! synced without commit, or both synced with no in-memory apply — and
//! returns [`WalError::InjectedCrash`] so the harness (or the `cusha`
//! binary, which exits with code 9) can restart and assert recovery.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use cusha_graph::mutate::{fingerprint, Mutation, MutationBatch};
use cusha_graph::Graph;

/// Magic bytes opening every WAL file.
pub const MAGIC: &[u8; 4] = b"CWAL";

/// Modeled wall-clock cost of one fsync, in seconds. Charged to the
/// service's modeled clock per sync point so commit latency is visible in
/// serve telemetry.
pub const MODELED_FSYNC_S: f64 = 50e-6;

/// Upper bound on a single record's payload; anything larger is treated as
/// corruption rather than trusted for allocation.
const MAX_RECORD_PAYLOAD: u32 = 1 << 26;

const KIND_BATCH: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_BASE: u8 = 3;

const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// Where an injected crash kills the commit sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid-way through writing the `Batch` record: a torn tail.
    MidRecord,
    /// `Batch` fully written and synced, but no `Commit`: an uncommitted
    /// batch that recovery must discard.
    PreCommit,
    /// `Batch` and `Commit` both synced, but the in-memory apply never
    /// ran: recovery must replay this batch.
    PreApply,
}

impl CrashPoint {
    /// Stable CLI / log label.
    pub fn label(self) -> &'static str {
        match self {
            CrashPoint::MidRecord => "mid-record",
            CrashPoint::PreCommit => "pre-commit",
            CrashPoint::PreApply => "pre-apply",
        }
    }
}

/// A deterministic kill point: crash at `point` while committing the
/// `batch`-th batch (1-based) of this process's run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Where in the commit sequence to die.
    pub point: CrashPoint,
    /// Which commit call (1-based) triggers it.
    pub batch: u64,
}

impl CrashSpec {
    /// Parses the CLI form `<point>@<n>`, e.g. `pre-commit@2`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (point, batch) = s
            .split_once('@')
            .ok_or_else(|| format!("crash spec `{s}` is not of the form <point>@<n>"))?;
        let point = match point {
            "mid-record" => CrashPoint::MidRecord,
            "pre-commit" => CrashPoint::PreCommit,
            "pre-apply" => CrashPoint::PreApply,
            other => {
                return Err(format!(
                    "unknown crash point `{other}` (expected mid-record, pre-commit or pre-apply)"
                ))
            }
        };
        let batch: u64 = batch
            .parse()
            .map_err(|_| format!("crash batch ordinal `{batch}` is not a number"))?;
        if batch == 0 {
            return Err("crash batch ordinal is 1-based".into());
        }
        Ok(CrashSpec { point, batch })
    }
}

/// Why a WAL operation failed.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A complete record failed its checksum, or the file structure is
    /// invalid: the log cannot be trusted and recovery refuses.
    Corrupt(String),
    /// The log's base revision matches neither the snapshot nor the
    /// caller-supplied base graph: replaying it would produce a graph we
    /// cannot anchor.
    Mismatch(String),
    /// A [`CrashSpec`] kill point fired; the file is exactly as a real
    /// crash would leave it.
    InjectedCrash(CrashPoint),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
            WalError::Mismatch(m) => write!(f, "wal base mismatch: {m}"),
            WalError::InjectedCrash(p) => write!(f, "injected crash at {}", p.label()),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<cusha_graph::io::IoError> for WalError {
    fn from(e: cusha_graph::io::IoError) -> Self {
        match e {
            cusha_graph::io::IoError::Io(e) => WalError::Io(e),
            other => WalError::Corrupt(format!("snapshot: {other}")),
        }
    }
}

/// What the graph recovered by [`Wal::open`] was replayed on top of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoverySource {
    /// No existing log: started fresh from the caller's graph.
    Fresh,
    /// Replayed on the caller-supplied base graph.
    BaseGraph,
    /// Replayed on the `<wal>.snap` snapshot.
    Snapshot,
}

impl RecoverySource {
    /// Stable log label.
    pub fn label(self) -> &'static str {
        match self {
            RecoverySource::Fresh => "fresh",
            RecoverySource::BaseGraph => "base-graph",
            RecoverySource::Snapshot => "snapshot",
        }
    }
}

/// What recovery found and did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Replay anchor.
    pub source: RecoverySource,
    /// Committed batches replayed onto the anchor graph.
    pub replayed_batches: u64,
    /// Bytes truncated off the tail (torn record and/or uncommitted batch).
    pub truncated_bytes: u64,
    /// Complete-but-uncommitted `Batch` records discarded (0 or 1).
    pub discarded_uncommitted: u64,
    /// Epoch after recovery.
    pub epoch: u64,
    /// Graph revision ([`fingerprint`]) after recovery.
    pub rev: u64,
}

/// Durability counters, cumulative over this `Wal`'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (including partial records from injected crashes).
    pub records_appended: u64,
    /// Commit points reached.
    pub commits: u64,
    /// Sync (modeled fsync) calls.
    pub syncs: u64,
    /// Snapshot compactions completed.
    pub snapshots: u64,
}

/// The open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    snap_path: PathBuf,
    snapshot_every: u32,
    crash: Option<CrashSpec>,
    batches_since_snapshot: u32,
    commit_calls: u64,
    stats: WalStats,
}

/// The snapshot path paired with a WAL path: `<wal>.snap`.
pub fn snapshot_path(wal: &Path) -> PathBuf {
    let mut os = wal.as_os_str().to_os_string();
    os.push(".snap");
    PathBuf::from(os)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn encode_record(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(4 + 1 + payload.len() + 8);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.push(kind);
    rec.extend_from_slice(payload);
    let mut sum = Vec::with_capacity(1 + payload.len());
    sum.push(kind);
    sum.extend_from_slice(payload);
    rec.extend_from_slice(&fnv1a(&sum).to_le_bytes());
    rec
}

fn encode_batch_payload(epoch: u64, batch: &MutationBatch) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + 4 + 13 * batch.ops.len());
    p.extend_from_slice(&epoch.to_le_bytes());
    p.extend_from_slice(&(batch.ops.len() as u32).to_le_bytes());
    for op in &batch.ops {
        match *op {
            Mutation::Insert { src, dst, weight } => {
                p.push(TAG_INSERT);
                p.extend_from_slice(&src.to_le_bytes());
                p.extend_from_slice(&dst.to_le_bytes());
                p.extend_from_slice(&weight.to_le_bytes());
            }
            Mutation::Delete { src, dst } => {
                p.push(TAG_DELETE);
                p.extend_from_slice(&src.to_le_bytes());
                p.extend_from_slice(&dst.to_le_bytes());
                p.extend_from_slice(&0u32.to_le_bytes());
            }
        }
    }
    p
}

fn decode_batch_payload(payload: &[u8]) -> Result<(u64, MutationBatch), WalError> {
    let corrupt = |m: &str| WalError::Corrupt(format!("batch record: {m}"));
    if payload.len() < 12 {
        return Err(corrupt("payload shorter than its header"));
    }
    let epoch = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let num_ops = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    if payload.len() != 12 + 13 * num_ops {
        return Err(corrupt("payload length does not match its op count"));
    }
    let mut batch = MutationBatch::new();
    for i in 0..num_ops {
        let at = 12 + 13 * i;
        let tag = payload[at];
        let src = u32::from_le_bytes(payload[at + 1..at + 5].try_into().unwrap());
        let dst = u32::from_le_bytes(payload[at + 5..at + 9].try_into().unwrap());
        let weight = u32::from_le_bytes(payload[at + 9..at + 13].try_into().unwrap());
        batch = match tag {
            TAG_INSERT => batch.insert(src, dst, weight),
            TAG_DELETE => batch.delete(src, dst),
            other => return Err(corrupt(&format!("unknown op tag {other}"))),
        };
    }
    Ok((epoch, batch))
}

/// One complete record read back from the file.
struct RawRecord {
    kind: u8,
    payload: Vec<u8>,
    /// File offset one past this record.
    end: u64,
}

/// `Ok(None)` is a clean EOF at a record boundary; a torn (short) read
/// returns `Err(Torn)` through the sentinel below.
enum ReadOutcome {
    Record(RawRecord),
    Eof,
    Torn,
}

fn read_record(r: &mut File, offset: u64) -> Result<ReadOutcome, WalError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_short(r, &mut len_buf)? {
        Short::Clean => return Ok(ReadOutcome::Eof),
        Short::Torn => return Ok(ReadOutcome::Torn),
        Short::Full => {}
    }
    let payload_len = u32::from_le_bytes(len_buf);
    if payload_len > MAX_RECORD_PAYLOAD {
        return Err(WalError::Corrupt(format!(
            "record at offset {offset} claims a {payload_len}-byte payload"
        )));
    }
    let mut body = vec![0u8; 1 + payload_len as usize + 8];
    match read_exact_or_short(r, &mut body)? {
        Short::Full => {}
        // A length prefix with a missing body is a torn write either way.
        Short::Clean | Short::Torn => return Ok(ReadOutcome::Torn),
    }
    let kind = body[0];
    let (checked, sum_bytes) = body.split_at(1 + payload_len as usize);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(checked) != stored {
        return Err(WalError::Corrupt(format!(
            "record at offset {offset} fails its checksum"
        )));
    }
    let end = offset + 4 + 1 + payload_len as u64 + 8;
    Ok(ReadOutcome::Record(RawRecord {
        kind,
        payload: checked[1..].to_vec(),
        end,
    }))
}

enum Short {
    Full,
    /// Zero bytes read: clean boundary.
    Clean,
    /// Some but not all bytes read: torn.
    Torn,
}

fn read_exact_or_short(r: &mut File, buf: &mut [u8]) -> Result<Short, WalError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 {
                Short::Clean
            } else {
                Short::Torn
            });
        }
        filled += n;
    }
    Ok(Short::Full)
}

impl Wal {
    /// Opens (or creates) the log at `path` and recovers the graph it
    /// describes.
    ///
    /// * No usable log on disk: writes a fresh `Base` anchored on
    ///   `base_graph` and returns it unchanged.
    /// * Existing log: anchors on the snapshot if its revision matches the
    ///   log's base (else on `base_graph`, else [`WalError::Mismatch`]),
    ///   replays every committed batch, truncates torn tails and
    ///   uncommitted batches, and refuses on checksum corruption.
    ///
    /// Returns the log handle, the recovered graph, the recovered epoch,
    /// and what recovery did. After `open` the on-disk log holds exactly
    /// the committed prefix.
    pub fn open(
        path: &Path,
        base_graph: &Graph,
        snapshot_every: u32,
        crash: Option<CrashSpec>,
    ) -> Result<(Wal, Graph, u64, RecoveryStats), WalError> {
        let snap_path = snapshot_path(path);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        let mut stats = WalStats::default();

        let wal_fresh = |file: &mut File, stats: &mut WalStats| -> Result<u64, WalError> {
            let rev = fingerprint(base_graph);
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            let mut payload = Vec::with_capacity(16);
            payload.extend_from_slice(&0u64.to_le_bytes());
            payload.extend_from_slice(&rev.to_le_bytes());
            file.write_all(&encode_record(KIND_BASE, &payload))?;
            file.sync_all()?;
            stats.records_appended += 1;
            stats.syncs += 1;
            Ok(rev)
        };

        if file_len < (MAGIC.len() + 4 + 1 + 16 + 8) as u64 {
            // Empty, or torn during initial creation before the base record
            // ever synced: nothing was committed, start fresh.
            let rev = wal_fresh(&mut file, &mut stats)?;
            let wal = Wal {
                file,
                path: path.to_path_buf(),
                snap_path,
                snapshot_every,
                crash,
                batches_since_snapshot: 0,
                commit_calls: 0,
                stats,
            };
            return Ok((
                wal,
                base_graph.clone(),
                0,
                RecoveryStats {
                    source: RecoverySource::Fresh,
                    replayed_batches: 0,
                    truncated_bytes: file_len,
                    discarded_uncommitted: 0,
                    epoch: 0,
                    rev,
                },
            ));
        }

        let mut magic = [0u8; 4];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(WalError::Corrupt(format!(
                "bad magic {magic:02x?} in {}",
                path.display()
            )));
        }

        // Base record first.
        let mut offset = MAGIC.len() as u64;
        let base = match read_record(&mut file, offset)? {
            ReadOutcome::Record(r) if r.kind == KIND_BASE && r.payload.len() == 16 => r,
            ReadOutcome::Record(_) => {
                return Err(WalError::Corrupt(
                    "first record is not a base record".into(),
                ))
            }
            // Guarded against above by the minimum-length check.
            ReadOutcome::Eof | ReadOutcome::Torn => {
                return Err(WalError::Corrupt("base record torn".into()))
            }
        };
        let base_epoch = u64::from_le_bytes(base.payload[0..8].try_into().unwrap());
        let base_rev = u64::from_le_bytes(base.payload[8..16].try_into().unwrap());
        offset = base.end;

        // Pick the replay anchor whose content matches the base revision.
        // Snapshot first: it is the compacted committed state and may be
        // ahead of the graph the caller loaded.
        let (mut graph, source) = if snap_path.exists() {
            let snap = cusha_graph::io::read_binary(File::open(&snap_path)?)?;
            if fingerprint(&snap) == base_rev {
                (snap, RecoverySource::Snapshot)
            } else if fingerprint(base_graph) == base_rev {
                (base_graph.clone(), RecoverySource::BaseGraph)
            } else {
                return Err(WalError::Mismatch(format!(
                    "log base rev {base_rev:016x} matches neither the snapshot nor the supplied graph"
                )));
            }
        } else if fingerprint(base_graph) == base_rev {
            (base_graph.clone(), RecoverySource::BaseGraph)
        } else {
            return Err(WalError::Mismatch(format!(
                "log base rev {base_rev:016x} does not match the supplied graph (no snapshot found)"
            )));
        };

        // Walk Batch/Commit pairs.
        let mut epoch = base_epoch;
        let mut replayed = 0u64;
        let mut last_committed_end = offset;
        let mut pending: Option<(u64, MutationBatch)> = None;
        let mut discarded_uncommitted = 0u64;
        loop {
            match read_record(&mut file, offset)? {
                ReadOutcome::Eof | ReadOutcome::Torn => break,
                ReadOutcome::Record(rec) => {
                    match rec.kind {
                        KIND_BATCH => {
                            if pending.is_some() {
                                return Err(WalError::Corrupt(format!(
                                    "batch record at offset {offset} follows an uncommitted batch"
                                )));
                            }
                            pending = Some(decode_batch_payload(&rec.payload)?);
                        }
                        KIND_COMMIT => {
                            if rec.payload.len() != 8 {
                                return Err(WalError::Corrupt(format!(
                                    "commit record at offset {offset} has a malformed payload"
                                )));
                            }
                            let commit_epoch =
                                u64::from_le_bytes(rec.payload[0..8].try_into().unwrap());
                            let (batch_epoch, batch) = pending.take().ok_or_else(|| {
                                WalError::Corrupt(format!(
                                    "commit record at offset {offset} has no preceding batch"
                                ))
                            })?;
                            if commit_epoch != batch_epoch || commit_epoch != epoch + 1 {
                                return Err(WalError::Corrupt(format!(
                                    "commit record at offset {offset} commits epoch {commit_epoch} \
                                     (batch says {batch_epoch}, expected {})",
                                    epoch + 1
                                )));
                            }
                            batch.apply(&mut graph).map_err(|e| {
                                WalError::Corrupt(format!(
                                    "committed batch for epoch {commit_epoch} does not apply: {e}"
                                ))
                            })?;
                            epoch = commit_epoch;
                            replayed += 1;
                            last_committed_end = rec.end;
                        }
                        KIND_BASE => {
                            return Err(WalError::Corrupt(format!(
                                "unexpected base record at offset {offset}"
                            )))
                        }
                        other => {
                            return Err(WalError::Corrupt(format!(
                                "unknown record kind {other} at offset {offset}"
                            )))
                        }
                    }
                    offset = rec.end;
                }
            }
        }
        if pending.is_some() {
            discarded_uncommitted = 1;
        }

        // Leave the file holding exactly the committed prefix.
        let truncated_bytes = file_len - last_committed_end;
        if truncated_bytes > 0 {
            file.set_len(last_committed_end)?;
            file.sync_all()?;
            stats.syncs += 1;
        }
        file.seek(SeekFrom::End(0))?;

        let rev = fingerprint(&graph);
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            snap_path,
            snapshot_every,
            crash,
            batches_since_snapshot: 0,
            commit_calls: 0,
            stats,
        };
        Ok((
            wal,
            graph,
            epoch,
            RecoveryStats {
                source,
                replayed_batches: replayed,
                truncated_bytes,
                discarded_uncommitted,
                epoch,
                rev,
            },
        ))
    }

    /// Durably commits `batch` as the transition into `epoch`.
    ///
    /// On `Ok` the batch is on disk past its commit point and the caller
    /// must apply it in memory (then call [`Wal::note_applied`]). Honors
    /// the [`CrashSpec`] given at open: when the kill point fires, the
    /// file is left exactly as a real crash would leave it and
    /// [`WalError::InjectedCrash`] is returned.
    pub fn commit_batch(&mut self, epoch: u64, batch: &MutationBatch) -> Result<(), WalError> {
        self.commit_calls += 1;
        let crash_here = self
            .crash
            .filter(|c| c.batch == self.commit_calls)
            .map(|c| c.point);

        let record = encode_record(KIND_BATCH, &encode_batch_payload(epoch, batch));
        if crash_here == Some(CrashPoint::MidRecord) {
            // Die halfway through the batch record: length prefix and part
            // of the body hit the disk, the checksum never does.
            let torn = record.len() / 2;
            self.file.write_all(&record[..torn])?;
            self.file.sync_all()?;
            self.stats.records_appended += 1;
            self.stats.syncs += 1;
            return Err(WalError::InjectedCrash(CrashPoint::MidRecord));
        }
        self.file.write_all(&record)?;
        self.file.sync_all()?;
        self.stats.records_appended += 1;
        self.stats.syncs += 1;
        if crash_here == Some(CrashPoint::PreCommit) {
            return Err(WalError::InjectedCrash(CrashPoint::PreCommit));
        }

        let commit = encode_record(KIND_COMMIT, &epoch.to_le_bytes());
        self.file.write_all(&commit)?;
        self.file.sync_all()?; // the commit point
        self.stats.records_appended += 1;
        self.stats.syncs += 1;
        self.stats.commits += 1;
        if crash_here == Some(CrashPoint::PreApply) {
            return Err(WalError::InjectedCrash(CrashPoint::PreApply));
        }
        Ok(())
    }

    /// Tells the log a committed batch was applied in memory, giving it a
    /// chance to compact: every `snapshot_every` applied batches the
    /// current `graph` is snapshotted to `<wal>.snap` (temp-file + rename)
    /// and the log is rewritten to a single `Base { epoch, rev }` record.
    /// Returns whether a compaction ran.
    pub fn note_applied(&mut self, graph: &Graph, epoch: u64) -> Result<bool, WalError> {
        self.batches_since_snapshot += 1;
        if self.snapshot_every == 0 || self.batches_since_snapshot < self.snapshot_every {
            return Ok(false);
        }

        let mut tmp = self.snap_path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let f = File::create(&tmp)?;
            cusha_graph::io::write_binary(graph, &f)?;
            f.sync_all()?;
            self.stats.syncs += 1;
        }
        std::fs::rename(&tmp, &self.snap_path)?;

        let rev = fingerprint(graph);
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(MAGIC)?;
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&epoch.to_le_bytes());
        payload.extend_from_slice(&rev.to_le_bytes());
        self.file.write_all(&encode_record(KIND_BASE, &payload))?;
        self.file.sync_all()?;
        self.stats.records_appended += 1;
        self.stats.syncs += 1;
        self.stats.snapshots += 1;
        self.batches_since_snapshot = 0;
        Ok(true)
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durability counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Modeled seconds spent in fsync so far ([`MODELED_FSYNC_S`] per
    /// sync point).
    pub fn modeled_sync_seconds(&self) -> f64 {
        self.stats.syncs as f64 * MODELED_FSYNC_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_graph::Edge;

    fn sample() -> Graph {
        Graph::new(4, vec![Edge::new(0, 1, 5), Edge::new(1, 2, 3)])
    }

    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("cusha-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(snapshot_path(&p));
        p
    }

    fn batch_n(n: u32) -> MutationBatch {
        MutationBatch::new().insert(n, 0, n)
    }

    /// Commits and applies `count` batches starting from (graph, epoch).
    fn drive(wal: &mut Wal, graph: &mut Graph, epoch: &mut u64, count: u32) {
        for i in 0..count {
            let b = batch_n(10 + i);
            wal.commit_batch(*epoch + 1, &b).unwrap();
            b.apply(graph).unwrap();
            *epoch += 1;
            wal.note_applied(graph, *epoch).unwrap();
        }
    }

    #[test]
    fn fresh_open_then_reopen_roundtrips() {
        let p = scratch("roundtrip");
        let base = sample();
        let (mut wal, mut g, mut epoch, rs) = Wal::open(&p, &base, 0, None).unwrap();
        assert_eq!(rs.source, RecoverySource::Fresh);
        drive(&mut wal, &mut g, &mut epoch, 3);
        drop(wal);

        let (_wal, g2, epoch2, rs2) = Wal::open(&p, &base, 0, None).unwrap();
        assert_eq!(rs2.source, RecoverySource::BaseGraph);
        assert_eq!(rs2.replayed_batches, 3);
        assert_eq!(rs2.truncated_bytes, 0);
        assert_eq!(epoch2, 3);
        assert_eq!(epoch2, epoch);
        assert_eq!(fingerprint(&g2), fingerprint(&g));
    }

    #[test]
    fn torn_tail_is_truncated() {
        let p = scratch("torn");
        let base = sample();
        let (mut wal, mut g, mut epoch, _) = Wal::open(&p, &base, 0, None).unwrap();
        drive(&mut wal, &mut g, &mut epoch, 2);
        drop(wal);

        // Shear a few bytes off the tail, as a crash mid-write would.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (_wal, g2, epoch2, rs) = Wal::open(&p, &base, 0, None).unwrap();
        assert_eq!(epoch2, 1, "the torn second commit must not replay");
        assert_eq!(rs.replayed_batches, 1);
        assert!(rs.truncated_bytes > 0);
        let mut expect = base.clone();
        batch_n(10).apply(&mut expect).unwrap();
        assert_eq!(fingerprint(&g2), fingerprint(&expect));
        // Post-recovery the file holds exactly the committed prefix.
        let (_wal, _g3, epoch3, rs3) = Wal::open(&p, &base, 0, None).unwrap();
        assert_eq!(epoch3, 1);
        assert_eq!(rs3.truncated_bytes, 0);
    }

    #[test]
    fn mid_log_checksum_corruption_refuses() {
        let p = scratch("bitrot");
        let base = sample();
        let (mut wal, mut g, mut epoch, _) = Wal::open(&p, &base, 0, None).unwrap();
        drive(&mut wal, &mut g, &mut epoch, 2);
        drop(wal);

        // Flip one bit inside the *first* batch record's payload: a
        // complete record that no longer matches its checksum.
        let mut bytes = std::fs::read(&p).unwrap();
        let at = MAGIC.len() + 4 + 1 + 16 + 8 + 4 + 1 + 3; // into batch #1's payload
        bytes[at] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();

        let err = Wal::open(&p, &base, 0, None).unwrap_err();
        assert!(matches!(err, WalError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn uncommitted_batch_is_discarded() {
        let p = scratch("uncommitted");
        let base = sample();
        let crash = CrashSpec {
            point: CrashPoint::PreCommit,
            batch: 2,
        };
        let (mut wal, mut g, mut epoch, _) = Wal::open(&p, &base, 0, Some(crash)).unwrap();
        drive(&mut wal, &mut g, &mut epoch, 1);
        let err = wal.commit_batch(epoch + 1, &batch_n(99)).unwrap_err();
        assert!(matches!(
            err,
            WalError::InjectedCrash(CrashPoint::PreCommit)
        ));
        drop(wal);

        let (_wal, g2, epoch2, rs) = Wal::open(&p, &base, 0, None).unwrap();
        assert_eq!(epoch2, 1);
        assert_eq!(rs.discarded_uncommitted, 1);
        assert!(rs.truncated_bytes > 0);
        let mut expect = base.clone();
        batch_n(10).apply(&mut expect).unwrap();
        assert_eq!(fingerprint(&g2), fingerprint(&expect));
    }

    #[test]
    fn committed_pre_apply_batch_is_replayed() {
        let p = scratch("preapply");
        let base = sample();
        let crash = CrashSpec {
            point: CrashPoint::PreApply,
            batch: 1,
        };
        let (mut wal, _g, epoch, _) = Wal::open(&p, &base, 0, Some(crash)).unwrap();
        let err = wal.commit_batch(epoch + 1, &batch_n(7)).unwrap_err();
        assert!(matches!(err, WalError::InjectedCrash(CrashPoint::PreApply)));
        drop(wal);

        let (_wal, g2, epoch2, rs) = Wal::open(&p, &base, 0, None).unwrap();
        assert_eq!(
            epoch2, 1,
            "committed batch must replay even if never applied"
        );
        assert_eq!(rs.replayed_batches, 1);
        let mut expect = base.clone();
        batch_n(7).apply(&mut expect).unwrap();
        assert_eq!(fingerprint(&g2), fingerprint(&expect));
    }

    #[test]
    fn mid_record_crash_leaves_recoverable_torn_tail() {
        let p = scratch("midrecord");
        let base = sample();
        let crash = CrashSpec {
            point: CrashPoint::MidRecord,
            batch: 2,
        };
        let (mut wal, mut g, mut epoch, _) = Wal::open(&p, &base, 0, Some(crash)).unwrap();
        drive(&mut wal, &mut g, &mut epoch, 1);
        let err = wal.commit_batch(epoch + 1, &batch_n(50)).unwrap_err();
        assert!(matches!(
            err,
            WalError::InjectedCrash(CrashPoint::MidRecord)
        ));
        drop(wal);

        let (_wal, g2, epoch2, rs) = Wal::open(&p, &base, 0, None).unwrap();
        assert_eq!(epoch2, 1);
        assert!(rs.truncated_bytes > 0);
        assert_eq!(rs.discarded_uncommitted, 0);
        let mut expect = base.clone();
        batch_n(10).apply(&mut expect).unwrap();
        assert_eq!(fingerprint(&g2), fingerprint(&expect));
    }

    #[test]
    fn snapshot_compaction_recovers_without_base_graph_contents() {
        let p = scratch("snapshot");
        let base = sample();
        let (mut wal, mut g, mut epoch, _) = Wal::open(&p, &base, 2, None).unwrap();
        drive(&mut wal, &mut g, &mut epoch, 5); // compacts at 2 and 4
        assert_eq!(wal.stats().snapshots, 2);
        assert!(snapshot_path(&p).exists());
        drop(wal);

        // Recovery anchors on the snapshot: the caller's stale base graph
        // no longer matches the compacted base revision, and that is fine.
        let (_wal, g2, epoch2, rs) = Wal::open(&p, &base, 2, None).unwrap();
        assert_eq!(rs.source, RecoverySource::Snapshot);
        assert_eq!(
            rs.replayed_batches, 1,
            "only the post-compaction batch replays"
        );
        assert_eq!(epoch2, 5);
        assert_eq!(fingerprint(&g2), fingerprint(&g));
    }

    #[test]
    fn base_mismatch_refuses() {
        let p = scratch("mismatch");
        let base = sample();
        let (mut wal, mut g, mut epoch, _) = Wal::open(&p, &base, 0, None).unwrap();
        drive(&mut wal, &mut g, &mut epoch, 1);
        drop(wal);

        let other = Graph::new(3, vec![Edge::new(0, 2, 1)]);
        let err = Wal::open(&p, &other, 0, None).unwrap_err();
        assert!(matches!(err, WalError::Mismatch(_)), "got {err}");
    }

    #[test]
    fn crash_spec_parses() {
        assert_eq!(
            CrashSpec::parse("pre-commit@2"),
            Ok(CrashSpec {
                point: CrashPoint::PreCommit,
                batch: 2
            })
        );
        assert_eq!(
            CrashSpec::parse("mid-record@1").unwrap().point,
            CrashPoint::MidRecord
        );
        assert_eq!(
            CrashSpec::parse("pre-apply@9").unwrap().point,
            CrashPoint::PreApply
        );
        assert!(CrashSpec::parse("pre-commit").is_err());
        assert!(CrashSpec::parse("sideways@1").is_err());
        assert!(CrashSpec::parse("pre-commit@0").is_err());
        assert!(CrashSpec::parse("pre-commit@x").is_err());
    }

    #[test]
    fn sync_accounting_is_charged() {
        let p = scratch("syncs");
        let base = sample();
        let (mut wal, mut g, mut epoch, _) = Wal::open(&p, &base, 0, None).unwrap();
        let before = wal.stats().syncs;
        drive(&mut wal, &mut g, &mut epoch, 1);
        // One sync for the batch record, one for the commit point.
        assert_eq!(wal.stats().syncs, before + 2);
        assert!(wal.modeled_sync_seconds() > 0.0);
        assert_eq!(wal.stats().commits, 1);
    }
}
