//! The resident query service.
//!
//! Lifecycle of a query: **admission** (bounded queue; shed with a typed
//! rejection when full) → **batching** at flush (same-kind traversals fuse
//! two-per-launch, `reach` queries bitset-pack up to 64 sources per
//! launch) → **launch** on warm prepared state (shard layouts built once
//! per value size, or one shared [`PreparedFrontier`] topology under
//! [`ServeEngine::Frontier`]; never rebuilt unless scrubbed) → **settle**
//! (exactly one typed response per admitted query, in arrival order).
//!
//! Isolation guarantees:
//!
//! * A query whose modeled-time **deadline** expires is cancelled at the
//!   next iteration boundary and settles `deadline`; its batch-mates keep
//!   running and settle normally. The whole launch is abandoned only when
//!   every lane in it has expired.
//! * A launch that trips the **fault** ladder is retried with modeled
//!   backoff; when retries are exhausted a multi-query launch is split
//!   into singletons so only the genuinely poisoned query settles
//!   `failed` — and the warm state is scrubbed (layouts dropped and
//!   rebuilt) so subsequent queries see a clean device.
//! * **SDC** never surfaces as a failure: the engine's internal
//!   checkpoint/rollback ladder recovers, and the service only forwards
//!   the detection counters into its metrics.
//! * The **result cache** key is `(graph_rev, program, source_set,
//!   integrity_mode)` — every input that determines the answer — with LRU
//!   eviction; hits settle at admission without touching the device.

use crate::admission::{AdmissionQueue, Admitted, ShedReason};
use crate::cache::{cache_key, CachedResult, ResultCache};
use crate::proto::{parse_line, Json, MutateRequest, Query, QueryOp, Request};
use crate::telemetry::{QueryOutcome, QueryRecord, SloConfig, Telemetry};
use crate::wal::{CrashPoint, CrashSpec, RecoveryStats, Wal, WalError, MODELED_FSYNC_S};
use cusha_algos::{
    extract_lane, Bfs, ConnectedComponents, FusedPair, MultiSourceBfs, PageRank, Sssp, Sswp,
    TraversalKind,
};
use cusha_core::integrity::checksum;
use cusha_core::{
    try_run_warm, CuShaConfig, CuShaOutput, EngineError, IntegrityConfig, IntegrityMode,
    PreparedLayout, Repr, RunObserver, RunStats, Value, VertexProgram,
};
use cusha_frontier::{try_run_frontier_warm, FrontierConfig, PreparedFrontier};
use cusha_graph::Graph;
use cusha_obs::json::{push_f64, push_str_lit};
use cusha_obs::trace::lanes;
use cusha_obs::{MetricsRegistry, Tracer};
use cusha_simt::{DeviceConfig, FaultPlan};
use std::collections::HashMap;

/// Modeled seconds of backoff before retry attempt `n` (0-based):
/// 0.1 ms, 0.2 ms, 0.4 ms, ... capped at attempt 10.
fn backoff_seconds(attempt: u32) -> f64 {
    1e-4 * f64::from(1u32 << attempt.min(10))
}

/// What happens to queries that arrive between a committed mutation and
/// the warm-layout rebuild that follows it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RebuildPolicy {
    /// Shed them with the typed `rebuilding` rejection: strict freshness,
    /// bounded work.
    #[default]
    Shed,
    /// Serve them from the previous epoch's still-valid prepared state
    /// (graph, layouts, cache entries under the previous revision):
    /// bounded staleness, no availability dip. The window closes at the
    /// end of the next flush, when the new epoch's layouts are rebuilt
    /// warm and every superseded revision is invalidated from the cache.
    ServePrevious,
}

impl RebuildPolicy {
    /// Parses the CLI form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "shed" => Some(RebuildPolicy::Shed),
            "serve-previous" => Some(RebuildPolicy::ServePrevious),
            _ => None,
        }
    }
}

/// Durable-mutation configuration: where the WAL lives and how it
/// compacts.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// WAL file path (`<path>.snap` holds the compaction snapshot).
    pub path: std::path::PathBuf,
    /// Snapshot-compact every N applied batches (0 = never).
    pub snapshot_every: u32,
    /// Deterministic kill point for the crash-injection harness.
    pub crash: Option<CrashSpec>,
}

/// Which warm engine the service launches queries on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeEngine {
    /// CuSha shard engine over warm [`PreparedLayout`]s; [`ServeConfig::repr`]
    /// selects G-Shards or Concatenated Windows.
    Shard,
    /// Frontier engine over a warm [`PreparedFrontier`] (push/pull direction
    /// switching); `repr` is ignored.
    Frontier,
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Warm engine family every launch runs on.
    pub engine: ServeEngine,
    /// CuSha representation for every launch (shard engine only).
    pub repr: Repr,
    /// Explicit shard size; `None` = autotune per value size.
    pub vertices_per_shard: Option<u32>,
    /// Per-run iteration cap.
    pub max_iterations: u32,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Admission queue capacity (queries between flushes).
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Fault retries per launch before splitting / failing.
    pub max_retries: u32,
    /// Default per-query deadline (ms of modeled time) when a query does
    /// not carry one. `None` = no default deadline.
    pub default_deadline_ms: Option<f64>,
    /// Livelock watchdog interval forwarded to the engine.
    pub watchdog_interval: Option<u32>,
    /// SDC defense configuration forwarded to the engine.
    pub integrity: IntegrityConfig,
    /// Fault-injection schedule; lives with the service and advances
    /// across queries (a consumed one-shot fault never re-fires).
    pub fault_plan: Option<FaultPlan>,
    /// Span sink (the service emits on [`lanes::SERVE`]).
    pub trace: Tracer,
    /// Service-level objectives the telemetry layer burns budget against.
    pub slo: SloConfig,
    /// Query-record ring-buffer capacity (overflow is counted).
    pub query_log_capacity: usize,
    /// Slow-query log capacity (top-N by latency).
    pub slow_log_capacity: usize,
    /// What queries see between a committed mutation and the rebuild.
    pub rebuild_policy: RebuildPolicy,
    /// Durable write-ahead mutation log; `None` = mutations are
    /// in-memory only.
    pub wal: Option<WalConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: ServeEngine::Shard,
            repr: Repr::ConcatWindows,
            vertices_per_shard: None,
            max_iterations: 10_000,
            device: DeviceConfig::gtx780(),
            queue_capacity: 64,
            cache_capacity: 128,
            max_retries: 3,
            default_deadline_ms: None,
            watchdog_interval: None,
            integrity: IntegrityConfig::default(),
            fault_plan: None,
            trace: Tracer::default(),
            slo: SloConfig::default(),
            query_log_capacity: 1024,
            slow_log_capacity: 16,
            rebuild_policy: RebuildPolicy::default(),
            wal: None,
        }
    }
}

fn integrity_label(mode: IntegrityMode) -> &'static str {
    match mode {
        IntegrityMode::Off => "off",
        IntegrityMode::Checksum => "checksum",
        IntegrityMode::Invariant => "invariant",
        IntegrityMode::Full => "full",
    }
}

/// Structural fingerprint of the loaded graph — the `graph_rev`
/// component of cache keys. Delegates to [`cusha_graph::fingerprint`] so
/// the service, the mutation layer and WAL recovery all revision a graph
/// identically.
pub fn graph_rev(graph: &Graph) -> u64 {
    cusha_graph::fingerprint(graph)
}

/// Per-lane deadline tracking at iteration boundaries.
///
/// Lane `l` expires at the first boundary whose modeled elapsed time
/// reaches `deadline_s[l]`; the run is cancelled (observer returns
/// `false` → [`EngineError::Deadline`]) only once *every* lane has
/// expired, so batch-mates of an expired query are never aborted.
struct DeadlineObserver {
    deadline_s: Vec<Option<f64>>,
    expired: Vec<Option<(u32, f64)>>,
}

impl DeadlineObserver {
    fn new(deadline_s: Vec<Option<f64>>) -> Self {
        let n = deadline_s.len();
        DeadlineObserver {
            deadline_s,
            expired: vec![None; n],
        }
    }
}

impl RunObserver for DeadlineObserver {
    fn on_iteration(&mut self, iteration: u32, _updated: u64, elapsed_seconds: f64) -> bool {
        for (l, d) in self.deadline_s.iter().enumerate() {
            if self.expired[l].is_none() {
                if let Some(d) = d {
                    if elapsed_seconds >= *d {
                        self.expired[l] = Some((iteration, elapsed_seconds));
                    }
                }
            }
        }
        !self.expired.iter().all(Option::is_some)
    }
}

/// How one engine launch (with retries) ended, per lane.
enum Outcome<V> {
    /// The run finished; lanes that expired on the way carry their expiry.
    Done {
        out: Box<CuShaOutput<V>>,
        expired: Vec<Option<(u32, f64)>>,
    },
    /// Every lane expired and the run was abandoned.
    AllExpired { expired: Vec<(u32, f64)> },
    /// A non-retryable engine error (watchdog, non-convergence, bad
    /// config): every lane settles `failed` with this reason.
    Typed { kind: &'static str, detail: String },
    /// Device faults survived every retry.
    FaultExhausted { detail: String },
}

/// One query's settled response, pre-rendering.
enum Settled {
    Ok {
        iterations: u32,
        modeled_seconds: f64,
        checksum: u64,
        cached: bool,
        value_bits: Option<Vec<u64>>,
    },
    Deadline {
        iterations: u32,
        elapsed_seconds: f64,
    },
    Failed {
        reason: &'static str,
        detail: String,
    },
    Rejected {
        reason: &'static str,
    },
}

/// Serving facts about the launch a lane rode in, captured when the
/// launch settles and joined back to each query at flush end.
#[derive(Clone, Debug)]
struct LaneMeta {
    /// Monotonic launch id (the `serve_batches_total` counter value).
    batch_id: u64,
    /// Queries fused into the launch.
    batch_width: u32,
    /// Fault retries the launch took.
    retries: u32,
    /// Whether warm prepared state already existed before the launch.
    warm: bool,
    /// Service clock when the launch started (queue-wait anchor).
    launch_start: f64,
    /// Service clock when the launch settled (latency anchor).
    settle_clock: f64,
}

/// The previous epoch's prepared state, kept alive through a
/// serve-previous rebuild window so in-window queries run on a complete,
/// consistent snapshot.
struct PrevEpoch {
    graph: Graph,
    rev: u64,
    layouts: HashMap<u32, PreparedLayout>,
    frontier: Option<PreparedFrontier>,
}

/// The resident service: one loaded graph, warm layouts, a stream of
/// queries. Drive it with [`Service::handle_line`] (one input line →
/// zero or more response lines) or [`run_session`].
pub struct Service {
    graph: Graph,
    cfg: ServeConfig,
    rev: u64,
    /// Mutation epoch: 0 at load (or the recovered epoch when a WAL
    /// replayed), +1 per committed batch.
    epoch: u64,
    layouts: HashMap<u32, PreparedLayout>,
    frontier: Option<PreparedFrontier>,
    /// The pre-mutation epoch a serve-previous rebuild window serves
    /// from; `None` outside a window (and always under `Shed`).
    prev: Option<PrevEpoch>,
    /// True from a committed mutation until the next flush closes the
    /// rebuild window.
    rebuilding: bool,
    /// Superseded revisions whose cache entries are invalidated when the
    /// window closes (immediately, under `Shed`).
    stale_revs: Vec<u64>,
    /// Shard sizes that were warm before the window opened; the window
    /// close rebuilds exactly these, once, however many batches the
    /// window covered.
    warm_sizes: std::collections::BTreeSet<u32>,
    /// Whether the frontier topology was warm before the window opened.
    warm_frontier: bool,
    wal: Option<Wal>,
    /// What WAL recovery found at startup, when a WAL is configured.
    recovery: Option<RecoveryStats>,
    /// Set when an injected WAL crash point fired; the session stops
    /// cold, as a real crash would.
    crashed: Option<CrashPoint>,
    plan: Option<FaultPlan>,
    cache: ResultCache,
    queue: AdmissionQueue,
    metrics: MetricsRegistry,
    telemetry: Telemetry,
    /// Per-lane launch facts for the flush in progress (index-aligned
    /// with the drained queue; split retries overwrite with singleton
    /// launch facts).
    flush_meta: Vec<Option<LaneMeta>>,
    /// Facts of the most recent launch, stamped onto its lanes.
    last_launch: Option<LaneMeta>,
    assigned_ids: u64,
    clock: f64,
    shut_down: bool,
}

impl Service {
    /// Builds a service over `graph`. The graph is validated once here;
    /// layouts are built lazily on first use per value size.
    ///
    /// When [`ServeConfig::wal`] is set, the log is opened (created
    /// fresh, or recovered: committed batches replayed on top of `graph`
    /// or the compaction snapshot, torn tails truncated) and the service
    /// starts at the recovered epoch — see [`Service::recovery`].
    pub fn new(graph: Graph, cfg: ServeConfig) -> Result<Self, String> {
        graph.validate().map_err(|e| e.to_string())?;
        Self::engine_cfg_for(&cfg).validate()?;
        cfg.trace.name_lane(0, lanes::SERVE, "service");
        cfg.trace.name_lane(0, lanes::MUTATE, "mutate");
        let (graph, epoch, wal, recovery) = match &cfg.wal {
            None => (graph, 0, None, None),
            Some(wc) => {
                let (wal, recovered, epoch, rs) =
                    Wal::open(&wc.path, &graph, wc.snapshot_every, wc.crash)
                        .map_err(|e| e.to_string())?;
                cusha_obs::log::write(
                    cusha_obs::log::Level::Info,
                    &format!(
                        "serve: wal recovery source={} replayed={} truncated_bytes={} \
                         discarded_uncommitted={} epoch={} rev={:016x}",
                        rs.source.label(),
                        rs.replayed_batches,
                        rs.truncated_bytes,
                        rs.discarded_uncommitted,
                        rs.epoch,
                        rs.rev
                    ),
                );
                (recovered, epoch, Some(wal), Some(rs))
            }
        };
        let rev = graph_rev(&graph);
        let plan = cfg.fault_plan.clone();
        let cache = ResultCache::new(cfg.cache_capacity);
        let queue = AdmissionQueue::new(cfg.queue_capacity);
        let telemetry = Telemetry::new(cfg.query_log_capacity, cfg.slow_log_capacity, cfg.slo);
        let mut metrics = MetricsRegistry::new();
        metrics.set_gauge("serve_epoch", &[], epoch as f64);
        if let Some(rs) = &recovery {
            metrics.add("serve_wal_replayed_batches_total", &[], rs.replayed_batches);
            metrics.add("serve_wal_truncated_bytes_total", &[], rs.truncated_bytes);
        }
        Ok(Service {
            graph,
            cfg,
            rev,
            epoch,
            layouts: HashMap::new(),
            frontier: None,
            prev: None,
            rebuilding: false,
            stale_revs: Vec::new(),
            warm_sizes: std::collections::BTreeSet::new(),
            warm_frontier: false,
            wal,
            recovery,
            crashed: None,
            plan,
            cache,
            queue,
            metrics,
            telemetry,
            flush_meta: Vec::new(),
            last_launch: None,
            assigned_ids: 0,
            clock: 0.0,
            shut_down: false,
        })
    }

    /// The loaded graph's structural fingerprint.
    pub fn graph_rev(&self) -> u64 {
        self.rev
    }

    /// The mutation epoch (0 at load, +1 per committed batch; recovered
    /// from the WAL on restart).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// What WAL recovery found and did at startup (`None` without a WAL).
    pub fn recovery(&self) -> Option<RecoveryStats> {
        self.recovery
    }

    /// The injected crash point that fired, if any. A crashed service
    /// stops processing input, exactly like a killed process.
    pub fn injected_crash(&self) -> Option<CrashPoint> {
        self.crashed
    }

    /// Whether `shutdown` (or EOF handling) has run.
    pub fn is_shut_down(&self) -> bool {
        self.shut_down
    }

    /// The service's metrics registry (`serve_*` series plus the
    /// per-launch engine series).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The service's telemetry bundle (query records, SLO window, slow
    /// log).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Folds the tracer's drop counter into the metrics registry as the
    /// `obs_trace_dropped` counter. Call once before snapshotting — a
    /// saturated span ring is data loss the snapshot must show.
    pub fn sync_trace_drops(&mut self) {
        let dropped = self.cfg.trace.dropped_count();
        if dropped > 0 {
            self.metrics.add("obs_trace_dropped", &[], dropped);
        }
    }

    fn engine_cfg_for(cfg: &ServeConfig) -> CuShaConfig {
        let mut c = CuShaConfig::new(cfg.repr);
        c.vertices_per_shard = cfg.vertices_per_shard;
        c.max_iterations = cfg.max_iterations;
        c.device = cfg.device.clone();
        c.watchdog_interval = cfg.watchdog_interval;
        c.integrity = cfg.integrity;
        c.trace = cfg.trace.clone();
        c
    }

    /// Handles one input line, returning the response lines it settles
    /// (possibly none: an admitted query settles at the next flush).
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        match parse_line(line) {
            Ok(Request::Empty) => Vec::new(),
            Ok(Request::Query(q)) => self.admit(q).into_iter().collect(),
            Ok(Request::Mutate(m)) => self.mutate(m),
            Ok(Request::Flush) => {
                let mut out = self.flush();
                out.push(format!(
                    "{{\"status\":\"flushed\",\"settled\":{}}}",
                    out.len()
                ));
                out
            }
            Ok(Request::Stats) => vec![self.render_stats()],
            Ok(Request::Shutdown) => self.shutdown(),
            Err(msg) => {
                let mut out =
                    String::from("{\"status\":\"error\",\"reason\":\"parse\",\"detail\":");
                push_str_lit(&mut out, &msg);
                out.push('}');
                vec![out]
            }
        }
    }

    /// Flushes the queue and marks the service stopped. Idempotent.
    pub fn shutdown(&mut self) -> Vec<String> {
        if self.shut_down {
            return vec!["{\"status\":\"shutdown\"}".to_string()];
        }
        let mut out = self.flush();
        self.shut_down = true;
        out.push("{\"status\":\"shutdown\"}".to_string());
        out
    }

    /// Commits one mutation batch: implicit query flush (a clean epoch
    /// boundary — everything admitted settles under the epoch it was
    /// admitted to) → validate → WAL commit (the durable point, fsync
    /// cost charged to the modeled clock) → apply in memory → epoch +1,
    /// revision re-fingerprinted, rebuild window opened.
    fn mutate(&mut self, m: MutateRequest) -> Vec<String> {
        let mut id = m.id;
        if id == Json::Null {
            self.assigned_ids += 1;
            id = Json::Num(self.assigned_ids as f64);
        }
        if self.shut_down {
            self.metrics
                .add("serve_mutations_total", &[("status", "rejected")], 1);
            return vec![render_mutate_error(&id, "rejected", "shutting-down")];
        }
        let mut out = self.flush_queries();
        let start = self.clock;
        // Validate against the live graph — mutations always land on the
        // newest epoch, even mid-window.
        if let Err(e) = m.batch.validate(&self.graph) {
            self.metrics
                .add("serve_mutations_total", &[("status", "invalid")], 1);
            out.push(render_mutate_error(&id, "invalid", &e.to_string()));
            return out;
        }
        let next_epoch = self.epoch + 1;
        if let Some(wal) = self.wal.as_mut() {
            let syncs_before = wal.stats().syncs;
            let committed = wal.commit_batch(next_epoch, &m.batch);
            self.clock += (wal.stats().syncs - syncs_before) as f64 * MODELED_FSYNC_S;
            match committed {
                Ok(()) => {}
                Err(WalError::InjectedCrash(p)) => {
                    self.crashed = Some(p);
                    self.metrics
                        .add("serve_mutations_total", &[("status", "crashed")], 1);
                    self.cfg
                        .trace
                        .instant(0, lanes::MUTATE, "serve", "injected-crash", self.clock);
                    // A killed process answers nothing; already-settled
                    // flush responses stand (they left before the crash).
                    return out;
                }
                Err(e) => {
                    self.metrics
                        .add("serve_mutations_total", &[("status", "wal-error")], 1);
                    out.push(render_mutate_error(&id, "wal-error", &e.to_string()));
                    return out;
                }
            }
        }
        // Committed. Remember which prepared state was warm so the window
        // close can rebuild exactly that, once, however many batches the
        // window covers.
        for &k in self.layouts.keys() {
            self.warm_sizes.insert(k);
        }
        if let Some(p) = &self.prev {
            for &k in p.layouts.keys() {
                self.warm_sizes.insert(k);
            }
            self.warm_frontier |= p.frontier.is_some();
        }
        self.warm_frontier |= self.frontier.is_some();
        let old_rev = self.rev;
        let took_prev =
            self.cfg.rebuild_policy == RebuildPolicy::ServePrevious && self.prev.is_none();
        if took_prev {
            // The window serves the oldest pre-window epoch; later batches
            // in the same window keep the same serving snapshot.
            self.prev = Some(PrevEpoch {
                graph: self.graph.clone(),
                rev: old_rev,
                layouts: std::mem::take(&mut self.layouts),
                frontier: self.frontier.take(),
            });
        }
        let delta = match m.batch.apply(&mut self.graph) {
            Ok(d) => d,
            Err(e) => {
                // Unreachable (validated above) — but restore and report
                // as a typed internal error rather than trust an
                // impossible state.
                if took_prev {
                    if let Some(p) = self.prev.take() {
                        self.graph = p.graph;
                        self.layouts = p.layouts;
                        self.frontier = p.frontier;
                    }
                }
                self.metrics.add("serve_internal_errors_total", &[], 1);
                out.push(render_mutate_error(&id, "internal", &e.to_string()));
                return out;
            }
        };
        self.layouts.clear();
        self.frontier = None;
        self.epoch = next_epoch;
        self.rev = graph_rev(&self.graph);
        self.stale_revs.push(old_rev);
        self.rebuilding = true;
        if let Some(wal) = self.wal.as_mut() {
            let syncs_before = wal.stats().syncs;
            match wal.note_applied(&self.graph, self.epoch) {
                Ok(compacted) => {
                    self.clock += (wal.stats().syncs - syncs_before) as f64 * MODELED_FSYNC_S;
                    if compacted {
                        self.metrics.add("serve_wal_snapshots_total", &[], 1);
                    }
                }
                Err(e) => {
                    // The batch is committed and applied; a failed
                    // compaction costs replay time on restart, not
                    // correctness.
                    self.clock += (wal.stats().syncs - syncs_before) as f64 * MODELED_FSYNC_S;
                    cusha_obs::log::write(
                        cusha_obs::log::Level::Warn,
                        &format!("serve: wal compaction failed, continuing on full log: {e}"),
                    );
                }
            }
        }
        // Shed has no serving window: superseded revisions are stale the
        // moment the batch applies.
        if self.cfg.rebuild_policy == RebuildPolicy::Shed {
            self.invalidate_stale();
        }
        self.metrics
            .add("serve_mutations_total", &[("status", "ok")], 1);
        self.metrics
            .add("serve_mutation_inserted_total", &[], delta.inserted as u64);
        self.metrics
            .add("serve_mutation_deleted_total", &[], delta.deleted as u64);
        self.metrics
            .set_gauge("serve_epoch", &[], self.epoch as f64);
        self.cfg.trace.complete(
            0,
            lanes::MUTATE,
            "serve",
            "mutate",
            start,
            self.clock - start,
        );
        out.push(render_mutate_ok(&id, self.epoch, self.rev, &delta));
        out
    }

    /// Drops every cache entry keyed on a superseded revision.
    fn invalidate_stale(&mut self) {
        let mut dropped = 0;
        for rev in std::mem::take(&mut self.stale_revs) {
            dropped += self.cache.invalidate_rev(rev);
        }
        if dropped > 0 {
            self.metrics
                .add("serve_cache_invalidated_total", &[], dropped as u64);
        }
    }

    /// Admits (or immediately settles) one query. Returns a response line
    /// for cache hits, rejections and invalid sources; `None` when the
    /// query is queued for the next flush.
    fn admit(&mut self, mut q: Query) -> Option<String> {
        self.metrics.add("serve_queries_total", &[], 1);
        if q.id == Json::Null {
            self.assigned_ids += 1;
            q.id = Json::Num(self.assigned_ids as f64);
        }
        if let Some(reason) = self.validate_query(&q.op) {
            return Some(self.shed(&q, reason));
        }
        if self.shut_down {
            return Some(self.shed(&q, ShedReason::ShuttingDown));
        }
        if self.rebuilding && self.cfg.rebuild_policy == RebuildPolicy::Shed {
            return Some(self.shed(&q, ShedReason::Rebuilding));
        }
        // Cache pass: a hit settles at the door without queue or device.
        let key = self.query_key(&q.op);
        if let Some(hit) = self.cache.get(&key) {
            self.metrics.add("serve_cache_hits_total", &[], 1);
            let settled = Settled::Ok {
                iterations: hit.iterations,
                modeled_seconds: hit.modeled_seconds,
                checksum: hit.checksum,
                cached: true,
                value_bits: q.want_values.then(|| hit.value_bits.clone()),
            };
            self.metrics
                .add("serve_responses_total", &[("status", "ok")], 1);
            // A hit settles in zero modeled time with no launch.
            self.record_query(QueryRecord {
                seq: 0,
                op: q.op.label(),
                queue_wait_s: 0.0,
                batch_id: 0,
                batch_width: 0,
                warm: false,
                cache_hit: true,
                retries: 0,
                latency_s: 0.0,
                deadline_slack_s: self.deadline_of(&q),
                outcome: QueryOutcome::Ok,
            });
            return Some(render_response(&q, &settled));
        }
        self.metrics.add("serve_cache_misses_total", &[], 1);
        match self.queue.admit(q.clone(), self.clock) {
            Ok(_) => {
                self.metrics
                    .set_gauge("serve_queue_depth", &[], self.queue.depth() as f64);
                None
            }
            Err(reason) => Some(self.shed(&q, reason)),
        }
    }

    fn shed(&mut self, q: &Query, reason: ShedReason) -> String {
        self.metrics
            .add("serve_shed_total", &[("reason", reason.label())], 1);
        self.metrics
            .add("serve_responses_total", &[("status", "rejected")], 1);
        self.record_query(QueryRecord {
            seq: 0,
            op: q.op.label(),
            queue_wait_s: 0.0,
            batch_id: 0,
            batch_width: 0,
            warm: false,
            cache_hit: false,
            retries: 0,
            latency_s: 0.0,
            deadline_slack_s: None,
            outcome: QueryOutcome::Rejected,
        });
        self.cfg
            .trace
            .instant(0, lanes::SERVE, "serve", "shed", self.clock);
        render_response(
            q,
            &Settled::Rejected {
                reason: reason.label(),
            },
        )
    }

    /// The revision in-window queries are served (and cache-keyed)
    /// against: the previous epoch's during a serve-previous rebuild
    /// window, the live one otherwise.
    fn active_rev(&self) -> u64 {
        match &self.prev {
            Some(p) if self.rebuilding => p.rev,
            _ => self.rev,
        }
    }

    /// The graph matching [`Service::active_rev`].
    fn active_graph(&self) -> &Graph {
        match &self.prev {
            Some(p) if self.rebuilding => &p.graph,
            _ => &self.graph,
        }
    }

    fn validate_query(&self, op: &QueryOp) -> Option<ShedReason> {
        let n = self.active_graph().num_vertices();
        match op {
            QueryOp::Traversal { source, .. } => (*source >= n).then_some(ShedReason::BadSource),
            QueryOp::Reach { sources } => {
                if sources.is_empty() || sources.len() > 64 {
                    Some(ShedReason::BadSourceSet)
                } else if sources.iter().any(|&s| s >= n) {
                    Some(ShedReason::BadSource)
                } else {
                    None
                }
            }
            QueryOp::PageRank | QueryOp::ConnectedComponents => None,
        }
    }

    fn query_key(&self, op: &QueryOp) -> String {
        let rev = self.active_rev();
        let integ = integrity_label(self.cfg.integrity.mode);
        match op {
            QueryOp::Traversal { kind, source } => cache_key(rev, kind.label(), &[*source], integ),
            QueryOp::Reach { sources } => cache_key(rev, "reach", sources, integ),
            QueryOp::PageRank => cache_key(rev, "pagerank", &[], integ),
            QueryOp::ConnectedComponents => cache_key(rev, "cc", &[], integ),
        }
    }

    /// Runs everything queued (responses in arrival order), then closes
    /// any open rebuild window: the new epoch's layouts are rebuilt warm,
    /// the previous epoch is dropped, and every superseded revision is
    /// invalidated from the cache.
    pub fn flush(&mut self) -> Vec<String> {
        let responses = self.flush_queries();
        self.close_window();
        responses
    }

    /// Settles everything queued without closing the rebuild window, so
    /// consecutive mutation batches amortize a single rebuild. During a
    /// serve-previous window the launches run on the previous epoch's
    /// state — the snapshot in-window queries were admitted and
    /// cache-keyed against.
    fn flush_queries(&mut self) -> Vec<String> {
        let swap = self.rebuilding && self.prev.is_some();
        if swap {
            self.swap_prev();
        }
        let responses = self.run_flush_body();
        if swap {
            self.swap_prev();
        }
        responses
    }

    /// Swaps the live epoch's serving state with the previous epoch's.
    fn swap_prev(&mut self) {
        if let Some(p) = self.prev.as_mut() {
            std::mem::swap(&mut self.graph, &mut p.graph);
            std::mem::swap(&mut self.rev, &mut p.rev);
            std::mem::swap(&mut self.layouts, &mut p.layouts);
            std::mem::swap(&mut self.frontier, &mut p.frontier);
        }
    }

    /// Ends the rebuild window opened by a committed mutation: rebuilds
    /// (warm) exactly the prepared state that was warm before the window,
    /// drops the previous epoch, and invalidates superseded revisions.
    fn close_window(&mut self) {
        if !self.rebuilding {
            return;
        }
        self.prev = None;
        let warm_sizes = std::mem::take(&mut self.warm_sizes);
        let warm_frontier = std::mem::replace(&mut self.warm_frontier, false);
        let mut rebuilt = 0u64;
        if self.cfg.engine == ServeEngine::Shard {
            for n_per in warm_sizes {
                let mut l = PreparedLayout::build(&self.graph, self.cfg.repr, n_per);
                l.stamp_rev(self.rev);
                self.layouts.insert(n_per, l);
                rebuilt += 1;
            }
        }
        if self.cfg.engine == ServeEngine::Frontier && warm_frontier {
            self.frontier = Some(PreparedFrontier::build(&self.graph));
            rebuilt += 1;
        }
        if rebuilt > 0 {
            self.metrics.add("serve_rebuilds_total", &[], rebuilt);
        }
        self.rebuilding = false;
        self.invalidate_stale();
        self.cfg
            .trace
            .instant(0, lanes::MUTATE, "serve", "window-close", self.clock);
    }

    /// The flush body proper: drain, batch, launch, settle.
    fn run_flush_body(&mut self) -> Vec<String> {
        let admitted = self.queue.drain();
        self.metrics.set_gauge("serve_queue_depth", &[], 0.0);
        if admitted.is_empty() {
            return Vec::new();
        }
        let flush_start = self.clock;
        self.metrics.add("serve_flushes_total", &[], 1);
        self.metrics
            .set_gauge("serve_inflight", &[], admitted.len() as f64);
        let mut settled: Vec<Option<Settled>> = admitted.iter().map(|_| None).collect();
        self.flush_meta = admitted.iter().map(|_| None).collect();
        self.last_launch = None;

        // Valued traversals, fused two-per-launch per kind.
        for kind in [TraversalKind::Bfs, TraversalKind::Sssp, TraversalKind::Sswp] {
            let idxs: Vec<usize> = admitted
                .iter()
                .enumerate()
                .filter(
                    |(_, a)| matches!(a.query.op, QueryOp::Traversal { kind: k, .. } if k == kind),
                )
                .map(|(i, _)| i)
                .collect();
            for pair in idxs.chunks(2) {
                self.run_traversal_pair(kind, pair, &admitted, &mut settled);
            }
        }

        // Reach queries, bitset-packed greedily up to 64 sources per launch.
        let reach_idxs: Vec<usize> = admitted
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.query.op, QueryOp::Reach { .. }))
            .map(|(i, _)| i)
            .collect();
        let mut group: Vec<usize> = Vec::new();
        let mut group_bits = 0usize;
        for &i in &reach_idxs {
            let w = match &admitted[i].query.op {
                QueryOp::Reach { sources } => sources.len(),
                _ => unreachable!(),
            };
            if group_bits + w > 64 && !group.is_empty() {
                self.run_reach_group(&group, &admitted, &mut settled);
                group.clear();
                group_bits = 0;
            }
            group.push(i);
            group_bits += w;
        }
        if !group.is_empty() {
            self.run_reach_group(&group, &admitted, &mut settled);
        }

        // Whole-graph refreshes, one launch each.
        for (i, a) in admitted.iter().enumerate() {
            match a.query.op {
                QueryOp::PageRank => {
                    let outcome = self.launch(&PageRank::new(), &[self.deadline_of(&a.query)]);
                    self.stamp(&[i]);
                    self.settle_single(i, a, outcome, &mut settled);
                }
                QueryOp::ConnectedComponents => {
                    let outcome =
                        self.launch(&ConnectedComponents::new(), &[self.deadline_of(&a.query)]);
                    self.stamp(&[i]);
                    self.settle_single(i, a, outcome, &mut settled);
                }
                _ => {}
            }
        }

        self.metrics.set_gauge("serve_inflight", &[], 0.0);
        self.metrics
            .set_gauge("serve_clock_seconds", &[], self.clock);
        self.cfg.trace.complete(
            0,
            lanes::SERVE,
            "serve",
            "flush",
            flush_start,
            self.clock - flush_start,
        );
        let flush_meta = std::mem::take(&mut self.flush_meta);
        let mut responses = Vec::with_capacity(admitted.len());
        for ((a, s), meta) in admitted.iter().zip(settled).zip(flush_meta) {
            // Every admitted query settles exactly once; a lane no batcher
            // claimed is an internal bug that must shed that one query
            // with a typed response, not take the service down.
            let s = s.unwrap_or_else(|| {
                self.metrics.add("serve_internal_errors_total", &[], 1);
                Settled::Failed {
                    reason: "internal",
                    detail: "admitted query was never settled by any launch".into(),
                }
            });
            let status = match &s {
                Settled::Ok { .. } => "ok",
                Settled::Deadline { .. } => "deadline",
                Settled::Failed { .. } => "failed",
                Settled::Rejected { .. } => "rejected",
            };
            self.metrics
                .add("serve_responses_total", &[("status", status)], 1);
            if matches!(s, Settled::Deadline { .. }) {
                self.metrics.add("serve_deadline_cancelled_total", &[], 1);
            }
            let outcome = match &s {
                Settled::Ok { .. } => QueryOutcome::Ok,
                Settled::Deadline { .. } => QueryOutcome::Deadline,
                Settled::Failed { .. } => QueryOutcome::Failed,
                Settled::Rejected { .. } => QueryOutcome::Rejected,
            };
            // Latency spans admission to the settling launch's end;
            // queue wait spans admission to that launch's start (both in
            // modeled seconds, so later lanes in a flush accrue the time
            // earlier launches spent running).
            let settle_clock = meta.as_ref().map_or(self.clock, |m| m.settle_clock);
            let launch_start = meta.as_ref().map_or(flush_start, |m| m.launch_start);
            let latency_s = (settle_clock - a.admit_clock).max(0.0);
            let rec = QueryRecord {
                seq: a.seq,
                op: a.query.op.label(),
                queue_wait_s: (launch_start - a.admit_clock).max(0.0),
                batch_id: meta.as_ref().map_or(0, |m| m.batch_id),
                batch_width: meta.as_ref().map_or(0, |m| m.batch_width),
                warm: meta.as_ref().is_some_and(|m| m.warm),
                cache_hit: false,
                retries: meta.as_ref().map_or(0, |m| m.retries),
                latency_s,
                deadline_slack_s: self.deadline_of(&a.query).map(|d| d - latency_s),
                outcome,
            };
            self.record_query(rec);
            responses.push(render_response(&a.query, &s));
        }
        responses
    }

    fn deadline_of(&self, q: &Query) -> Option<f64> {
        q.deadline_ms
            .or(self.cfg.default_deadline_ms)
            .map(|ms| ms / 1e3)
    }

    /// One engine launch with the service's retry policy. `deadlines` has
    /// one slot per lane; the observer state feeds per-lane settlement.
    fn launch<P: VertexProgram>(&mut self, prog: &P, deadlines: &[Option<f64>]) -> Outcome<P::V> {
        let ecfg = Self::engine_cfg_for(&self.cfg);
        let fcfg = FrontierConfig::from_cusha(&ecfg);
        let n_per =
            PreparedLayout::select_n_per(&self.graph, &ecfg, <P::V as cusha_simt::Pod>::SIZE);
        let launch_start = self.clock;
        let warm = match self.cfg.engine {
            ServeEngine::Shard => self.layouts.contains_key(&n_per),
            ServeEngine::Frontier => self.frontier.is_some(),
        };
        match self.cfg.engine {
            ServeEngine::Shard => {
                if !self.layouts.contains_key(&n_per) {
                    let mut l = PreparedLayout::build(&self.graph, self.cfg.repr, n_per);
                    l.stamp_rev(self.rev);
                    self.layouts.insert(n_per, l);
                }
            }
            ServeEngine::Frontier => {
                if self.frontier.is_none() {
                    self.frontier = Some(PreparedFrontier::build(&self.graph));
                }
            }
        }
        self.metrics.add("serve_batches_total", &[], 1);
        let batch_id = self
            .metrics
            .counter("serve_batches_total", &[])
            .unwrap_or(1);
        self.metrics
            .observe("serve_batch_width", &[], deadlines.len() as f64);
        if !warm {
            self.metrics.add("serve_cold_launches_total", &[], 1);
        }
        let mut attempt = 0u32;
        let outcome = 'run: loop {
            let mut observer = DeadlineObserver::new(deadlines.to_vec());
            // Missing or wrong-revision prepared state here is an internal
            // bug (it was built and stamped above): shed this one launch
            // with a typed failure instead of panicking the service.
            let result = match self.cfg.engine {
                ServeEngine::Shard => match self.layouts.get(&n_per) {
                    Some(layout) if layout.valid_for(self.rev) => try_run_warm(
                        prog,
                        &self.graph,
                        layout,
                        &ecfg,
                        self.plan.as_mut(),
                        &mut observer,
                    ),
                    stale => {
                        self.metrics.add("serve_internal_errors_total", &[], 1);
                        let detail = if stale.is_some() {
                            format!(
                                "prepared layout for shard size {n_per} is stamped for a \
                                 superseded graph revision"
                            )
                        } else {
                            format!("prepared layout for shard size {n_per} missing after build")
                        };
                        break 'run Outcome::Typed {
                            kind: "internal",
                            detail,
                        };
                    }
                },
                ServeEngine::Frontier => match self.frontier.as_ref() {
                    Some(pf) => try_run_frontier_warm(
                        prog,
                        &self.graph,
                        pf,
                        &fcfg,
                        self.plan.as_mut(),
                        &mut observer,
                    )
                    .map(|o| CuShaOutput {
                        values: o.values,
                        stats: o.stats,
                    }),
                    None => {
                        self.metrics.add("serve_internal_errors_total", &[], 1);
                        break 'run Outcome::Typed {
                            kind: "internal",
                            detail: "prepared frontier topology missing after build".into(),
                        };
                    }
                },
            };
            match result {
                Ok(out) => {
                    self.account_run(&out.stats);
                    break 'run Outcome::Done {
                        out: Box::new(out),
                        expired: observer.expired,
                    };
                }
                Err(EngineError::Deadline {
                    iterations,
                    elapsed_seconds,
                }) => {
                    self.clock += elapsed_seconds;
                    break 'run Outcome::AllExpired {
                        expired: observer
                            .expired
                            .into_iter()
                            .map(|e| e.unwrap_or((iterations, elapsed_seconds)))
                            .collect(),
                    };
                }
                Err(
                    e @ (EngineError::CopyFault { .. }
                    | EngineError::KernelFault { .. }
                    | EngineError::DeviceOom { .. }),
                ) => {
                    if attempt >= self.cfg.max_retries {
                        break 'run Outcome::FaultExhausted {
                            detail: e.to_string(),
                        };
                    }
                    attempt += 1;
                    let pause = backoff_seconds(attempt - 1);
                    self.clock += pause;
                    self.metrics.add("serve_batch_retries_total", &[], 1);
                    self.metrics.observe("serve_backoff_seconds", &[], pause);
                    self.cfg
                        .trace
                        .instant(0, lanes::SERVE, "serve", "retry", self.clock);
                    cusha_obs::log::write(
                        cusha_obs::log::Level::Warn,
                        &format!("serve: retrying {} after fault: {e}", prog.name()),
                    );
                }
                Err(e) => {
                    break 'run Outcome::Typed {
                        kind: e.kind(),
                        detail: e.to_string(),
                    }
                }
            }
        };
        self.last_launch = Some(LaneMeta {
            batch_id,
            batch_width: deadlines.len() as u32,
            retries: attempt,
            warm,
            launch_start,
            settle_clock: self.clock,
        });
        outcome
    }

    /// Copies the most recent launch's facts onto each of its lanes.
    /// Split retries call back through [`Service::launch`] per lane, so
    /// the overwrite leaves each query tagged with the launch that
    /// actually settled it.
    fn stamp(&mut self, idxs: &[usize]) {
        if let Some(meta) = self.last_launch.clone() {
            for &i in idxs {
                if let Some(slot) = self.flush_meta.get_mut(i) {
                    *slot = Some(meta.clone());
                }
            }
        }
    }

    /// Routes one terminal query record into metrics and the telemetry
    /// bundle. Rejections carry no meaningful latency and skip the
    /// histograms.
    fn record_query(&mut self, rec: QueryRecord) {
        if rec.outcome != QueryOutcome::Rejected {
            self.metrics
                .observe("serve_query_latency_seconds", &[], rec.latency_s);
            self.metrics
                .observe("serve_queue_wait_seconds", &[], rec.queue_wait_s);
        }
        self.telemetry.record(rec);
    }

    fn account_run(&mut self, stats: &RunStats) {
        self.clock += stats.total_seconds();
        self.metrics
            .observe("serve_query_modeled_seconds", &[], stats.total_seconds());
        stats
            .fault
            .record_metrics(&mut self.metrics, &[("scope", "serve")]);
        stats
            .sdc
            .record_metrics(&mut self.metrics, &[("scope", "serve")]);
    }

    /// Drops warm state after an unrecoverable fault so later queries see
    /// a clean slate: layouts are rebuilt on demand; verified cache
    /// entries stay (their keys pin the graph revision and they were
    /// settled before the fault).
    fn scrub(&mut self) {
        self.layouts.clear();
        self.frontier = None;
        self.metrics.add("serve_scrubs_total", &[], 1);
        self.cfg
            .trace
            .instant(0, lanes::SERVE, "serve", "scrub", self.clock);
        cusha_obs::log::write(
            cusha_obs::log::Level::Warn,
            "serve: scrubbed warm layouts after exhausted fault retries",
        );
    }

    fn cache_fill(&mut self, op: &QueryOp, out_iter: u32, seconds: f64, bits: Vec<u64>) -> u64 {
        let crc = checksum(&bits);
        let key = self.query_key(op);
        self.cache.put(
            key,
            CachedResult {
                iterations: out_iter,
                modeled_seconds: seconds,
                checksum: crc,
                value_bits: bits,
            },
        );
        crc
    }

    fn run_traversal_pair(
        &mut self,
        kind: TraversalKind,
        pair: &[usize],
        admitted: &[Admitted],
        settled: &mut [Option<Settled>],
    ) {
        let sources: Vec<u32> = pair
            .iter()
            .map(|&i| match admitted[i].query.op {
                QueryOp::Traversal { source, .. } => source,
                _ => unreachable!(),
            })
            .collect();
        let deadlines: Vec<Option<f64>> = pair
            .iter()
            .map(|&i| self.deadline_of(&admitted[i].query))
            .collect();
        let prog = FusedPair::new(kind, [Some(sources[0]), sources.get(1).copied()]);
        let outcome = self.launch(&prog, &deadlines);
        self.stamp(pair);
        match outcome {
            Outcome::Done { out, expired } => {
                let seconds = out.stats.total_seconds();
                for (lane, &i) in pair.iter().enumerate() {
                    settled[i] = Some(match expired[lane] {
                        Some((iterations, elapsed_seconds)) => Settled::Deadline {
                            iterations,
                            elapsed_seconds,
                        },
                        None => {
                            let values = extract_lane(&out.values, lane);
                            let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
                            let crc = self.cache_fill(
                                &admitted[i].query.op,
                                out.stats.iterations,
                                seconds,
                                bits.clone(),
                            );
                            Settled::Ok {
                                iterations: out.stats.iterations,
                                modeled_seconds: seconds,
                                checksum: crc,
                                cached: false,
                                value_bits: admitted[i].query.want_values.then_some(bits),
                            }
                        }
                    });
                }
            }
            Outcome::AllExpired { expired } => {
                for (lane, &i) in pair.iter().enumerate() {
                    settled[i] = Some(Settled::Deadline {
                        iterations: expired[lane].0,
                        elapsed_seconds: expired[lane].1,
                    });
                }
            }
            Outcome::Typed { kind, detail } => {
                for &i in pair {
                    settled[i] = Some(Settled::Failed {
                        reason: kind,
                        detail: detail.clone(),
                    });
                }
            }
            Outcome::FaultExhausted { detail } => {
                if pair.len() > 1 {
                    // Blast-radius isolation: re-run each query alone so
                    // only the poisoned one fails.
                    self.metrics.add("serve_splits_total", &[], 1);
                    for &i in pair {
                        self.run_traversal_single(kind, i, admitted, settled);
                    }
                } else {
                    settled[pair[0]] = Some(Settled::Failed {
                        reason: "fault-exhausted",
                        detail,
                    });
                    self.scrub();
                }
            }
        }
    }

    fn run_traversal_single(
        &mut self,
        kind: TraversalKind,
        i: usize,
        admitted: &[Admitted],
        settled: &mut [Option<Settled>],
    ) {
        let source = match admitted[i].query.op {
            QueryOp::Traversal { source, .. } => source,
            _ => unreachable!(),
        };
        let deadlines = [self.deadline_of(&admitted[i].query)];
        let outcome = match kind {
            TraversalKind::Bfs => self.launch(&Bfs::new(source), &deadlines),
            TraversalKind::Sssp => self.launch(&Sssp::new(source), &deadlines),
            TraversalKind::Sswp => self.launch(&Sswp::new(source), &deadlines),
        };
        self.stamp(&[i]);
        self.settle_single(i, &admitted[i], outcome, settled);
    }

    /// Settles one single-lane outcome (singleton traversal, PR, CC).
    fn settle_single<V: Value>(
        &mut self,
        i: usize,
        a: &Admitted,
        outcome: Outcome<V>,
        settled: &mut [Option<Settled>],
    ) {
        settled[i] = Some(match outcome {
            Outcome::Done { out, expired } => match expired[0] {
                Some((iterations, elapsed_seconds)) => Settled::Deadline {
                    iterations,
                    elapsed_seconds,
                },
                None => {
                    let seconds = out.stats.total_seconds();
                    let bits: Vec<u64> = out.values.iter().map(|v| v.to_bits()).collect();
                    let crc =
                        self.cache_fill(&a.query.op, out.stats.iterations, seconds, bits.clone());
                    Settled::Ok {
                        iterations: out.stats.iterations,
                        modeled_seconds: seconds,
                        checksum: crc,
                        cached: false,
                        value_bits: a.query.want_values.then_some(bits),
                    }
                }
            },
            Outcome::AllExpired { expired } => Settled::Deadline {
                iterations: expired[0].0,
                elapsed_seconds: expired[0].1,
            },
            Outcome::Typed { kind, detail } => Settled::Failed {
                reason: kind,
                detail,
            },
            Outcome::FaultExhausted { detail } => {
                self.scrub();
                Settled::Failed {
                    reason: "fault-exhausted",
                    detail,
                }
            }
        });
    }

    fn run_reach_group(
        &mut self,
        group: &[usize],
        admitted: &[Admitted],
        settled: &mut [Option<Settled>],
    ) {
        let mut all_sources: Vec<u32> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::new(); // (lo bit, width)
        for &i in group {
            let sources = match &admitted[i].query.op {
                QueryOp::Reach { sources } => sources,
                _ => unreachable!(),
            };
            ranges.push((all_sources.len(), sources.len()));
            all_sources.extend_from_slice(sources);
        }
        let deadlines: Vec<Option<f64>> = group
            .iter()
            .map(|&i| self.deadline_of(&admitted[i].query))
            .collect();
        let prog = MultiSourceBfs::new(all_sources);
        let outcome = self.launch(&prog, &deadlines);
        self.stamp(group);
        match outcome {
            Outcome::Done { out, expired } => {
                let seconds = out.stats.total_seconds();
                for (q, &i) in group.iter().enumerate() {
                    settled[i] = Some(match expired[q] {
                        Some((iterations, elapsed_seconds)) => Settled::Deadline {
                            iterations,
                            elapsed_seconds,
                        },
                        None => {
                            let (lo, width) = ranges[q];
                            let mask = if width == 64 {
                                u64::MAX
                            } else {
                                (1u64 << width) - 1
                            };
                            let bits: Vec<u64> =
                                out.values.iter().map(|v| (v >> lo) & mask).collect();
                            let crc = self.cache_fill(
                                &admitted[i].query.op,
                                out.stats.iterations,
                                seconds,
                                bits.clone(),
                            );
                            Settled::Ok {
                                iterations: out.stats.iterations,
                                modeled_seconds: seconds,
                                checksum: crc,
                                cached: false,
                                value_bits: admitted[i].query.want_values.then_some(bits),
                            }
                        }
                    });
                }
            }
            Outcome::AllExpired { expired } => {
                for (q, &i) in group.iter().enumerate() {
                    settled[i] = Some(Settled::Deadline {
                        iterations: expired[q].0,
                        elapsed_seconds: expired[q].1,
                    });
                }
            }
            Outcome::Typed { kind, detail } => {
                for &i in group {
                    settled[i] = Some(Settled::Failed {
                        reason: kind,
                        detail: detail.clone(),
                    });
                }
            }
            Outcome::FaultExhausted { detail } => {
                if group.len() > 1 {
                    self.metrics.add("serve_splits_total", &[], 1);
                    for &i in group {
                        self.run_reach_group(&[i], admitted, settled);
                    }
                } else {
                    settled[group[0]] = Some(Settled::Failed {
                        reason: "fault-exhausted",
                        detail,
                    });
                    self.scrub();
                }
            }
        }
    }

    fn render_stats(&mut self) -> String {
        let (hits, misses) = self.cache.hit_miss();
        let shed: u64 = [
            "queue-full",
            "bad-source",
            "bad-source-set",
            "shutting-down",
            "rebuilding",
        ]
        .iter()
        .filter_map(|r| self.metrics.counter("serve_shed_total", &[("reason", r)]))
        .sum();
        let mut out = String::from("{\"status\":\"stats\"");
        out.push_str(&format!(",\"epoch\":{}", self.epoch));
        out.push_str(",\"graph_rev\":");
        push_str_lit(&mut out, &format!("{:016x}", self.rev));
        out.push_str(&format!(",\"rebuilding\":{}", self.rebuilding));
        out.push_str(&format!(",\"queue_depth\":{}", self.queue.depth()));
        out.push_str(&format!(",\"admitted\":{}", self.queue.admitted_total()));
        out.push_str(&format!(",\"shed\":{shed}"));
        out.push_str(&format!(",\"cache_hits\":{hits}"));
        out.push_str(&format!(",\"cache_misses\":{misses}"));
        out.push_str(&format!(",\"cache_entries\":{}", self.cache.len()));
        out.push_str(",\"cache_hit_rate\":");
        let looked_up = hits + misses;
        push_f64(
            &mut out,
            if looked_up == 0 {
                0.0
            } else {
                hits as f64 / looked_up as f64
            },
        );
        // Live latency quantiles out of the log-bucketed histogram.
        let (p50, p99) = self
            .metrics
            .histogram("serve_query_latency_seconds", &[])
            .map_or((0.0, 0.0), |h| (h.quantile(0.5), h.quantile(0.99)));
        out.push_str(",\"latency_p50_ms\":");
        push_f64(&mut out, p50 * 1e3);
        out.push_str(",\"latency_p99_ms\":");
        push_f64(&mut out, p99 * 1e3);
        let slo = self.telemetry.slo.config();
        out.push_str(",\"slo\":{\"latency_objective_ms\":");
        push_f64(&mut out, slo.latency_objective_s * 1e3);
        out.push_str(",\"latency_target\":");
        push_f64(&mut out, slo.latency_target);
        out.push_str(",\"availability_target\":");
        push_f64(&mut out, slo.availability_target);
        out.push_str(&format!(",\"window\":{}", self.telemetry.slo.window_len()));
        out.push_str(",\"latency_burn_rate\":");
        push_f64(&mut out, self.telemetry.slo.latency_burn_rate());
        out.push_str(",\"error_burn_rate\":");
        push_f64(&mut out, self.telemetry.slo.error_burn_rate());
        out.push('}');
        out.push_str(",\"slowest_ms\":");
        push_f64(
            &mut out,
            self.telemetry
                .slow
                .entries()
                .first()
                .map_or(0.0, |r| r.latency_s * 1e3),
        );
        out.push_str(&format!(
            ",\"query_log_dropped\":{}",
            self.telemetry.log.dropped()
        ));
        out.push_str(",\"clock_ms\":");
        push_f64(&mut out, self.clock * 1e3);
        out.push('}');
        out
    }
}

/// Renders a committed mutation's response line.
fn render_mutate_ok(id: &Json, epoch: u64, rev: u64, delta: &cusha_graph::MutationDelta) -> String {
    let mut out = String::from("{\"id\":");
    id.render(&mut out);
    out.push_str(",\"op\":\"mutate\",\"status\":\"ok\"");
    out.push_str(&format!(",\"epoch\":{epoch}"));
    // Hex string like the result checksums: u64 revisions overflow the
    // 53-bit integer range f64-based JSON parsers round-trip.
    out.push_str(",\"graph_rev\":");
    push_str_lit(&mut out, &format!("{rev:016x}"));
    out.push_str(&format!(
        ",\"inserted\":{},\"deleted\":{},\"grew_vertices\":{}}}",
        delta.inserted, delta.deleted, delta.grew_vertices
    ));
    out
}

/// Renders a refused mutation's response line.
fn render_mutate_error(id: &Json, reason: &str, detail: &str) -> String {
    let mut out = String::from("{\"id\":");
    id.render(&mut out);
    out.push_str(",\"op\":\"mutate\",\"status\":\"error\",\"reason\":");
    push_str_lit(&mut out, reason);
    out.push_str(",\"detail\":");
    push_str_lit(&mut out, detail);
    out.push('}');
    out
}

/// Renders one settled response line.
fn render_response(q: &Query, settled: &Settled) -> String {
    let mut out = String::from("{\"id\":");
    q.id.render(&mut out);
    out.push_str(",\"op\":");
    push_str_lit(&mut out, q.op.label());
    match settled {
        Settled::Ok {
            iterations,
            modeled_seconds,
            checksum,
            cached,
            value_bits,
        } => {
            out.push_str(",\"status\":\"ok\",\"iterations\":");
            out.push_str(&iterations.to_string());
            out.push_str(",\"modeled_ms\":");
            push_f64(&mut out, modeled_seconds * 1e3);
            out.push_str(",\"cached\":");
            out.push_str(if *cached { "true" } else { "false" });
            // Hex string, not a JSON number: u64 checksums overflow the
            // 53-bit integer range f64-based JSON parsers round-trip.
            out.push_str(",\"checksum\":");
            push_str_lit(&mut out, &format!("{checksum:016x}"));
            if let Some(bits) = value_bits {
                out.push_str(",\"values\":[");
                for (i, &b) in bits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match q.op {
                        QueryOp::PageRank => push_f64(&mut out, f32::from_bits(b as u32) as f64),
                        // Reach bitsets are u64 words; hex strings survive
                        // f64-based JSON parsers (like the checksum).
                        QueryOp::Reach { .. } => push_str_lit(&mut out, &format!("{b:x}")),
                        _ => out.push_str(&(b as u32).to_string()),
                    }
                }
                out.push(']');
            }
        }
        Settled::Deadline {
            iterations,
            elapsed_seconds,
        } => {
            out.push_str(",\"status\":\"deadline\",\"iterations\":");
            out.push_str(&iterations.to_string());
            out.push_str(",\"modeled_ms\":");
            push_f64(&mut out, elapsed_seconds * 1e3);
        }
        Settled::Failed { reason, detail } => {
            out.push_str(",\"status\":\"failed\",\"reason\":");
            push_str_lit(&mut out, reason);
            out.push_str(",\"detail\":");
            push_str_lit(&mut out, detail);
        }
        Settled::Rejected { reason } => {
            out.push_str(",\"status\":\"rejected\",\"reason\":");
            push_str_lit(&mut out, reason);
        }
    }
    out.push('}');
    out
}

/// Drives a service over line-based input/output until EOF, shutdown, or
/// an injected crash. EOF without an explicit `shutdown` still flushes
/// pending queries, so scripted sessions never lose admitted work — but
/// an injected crash stops the session cold with no drain and no
/// shutdown line, exactly like a killed process.
pub fn run_session<R: std::io::BufRead, W: std::io::Write>(
    service: &mut Service,
    input: R,
    output: &mut W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        for response in service.handle_line(&line) {
            writeln!(output, "{response}")?;
        }
        output.flush()?;
        if service.is_shut_down() || service.injected_crash().is_some() {
            return Ok(());
        }
    }
    for response in service.shutdown() {
        writeln!(output, "{response}")?;
    }
    output.flush()
}
