//! Admission control: the bounded wait queue in front of the batcher.
//!
//! Every query is either *admitted* (it will get exactly one settled
//! response at the next flush) or *shed* with a typed rejection at
//! enqueue time — the queue never silently drops work, and a full queue
//! rejects the newcomer rather than evicting an admitted query (admission
//! is a promise).

use crate::proto::Query;

/// Why a query was refused at the door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The wait queue is at capacity.
    QueueFull,
    /// The query references a vertex outside the loaded graph.
    BadSource,
    /// A `reach` query exceeds the 64-source bitset or names no source.
    BadSourceSet,
    /// The service is draining after shutdown.
    ShuttingDown,
    /// A committed mutation is rebuilding warm layouts and the service's
    /// rebuild policy sheds rather than serving the previous epoch.
    Rebuilding,
}

impl ShedReason {
    /// Wire label carried in the `rejected` response.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::BadSource => "bad-source",
            ShedReason::BadSourceSet => "bad-source-set",
            ShedReason::ShuttingDown => "shutting-down",
            ShedReason::Rebuilding => "rebuilding",
        }
    }
}

/// An admitted query with its arrival order (responses settle in arrival
/// order, whatever batch shape execution takes).
#[derive(Clone, Debug)]
pub struct Admitted {
    /// Arrival sequence number, unique per service lifetime.
    pub seq: u64,
    /// Service clock (modeled seconds) at admission — the anchor for
    /// queue-wait and latency telemetry.
    pub admit_clock: f64,
    /// The query.
    pub query: Query,
}

/// The bounded admission queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    next_seq: u64,
    pending: Vec<Admitted>,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` queries between flushes.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            next_seq: 0,
            pending: Vec::new(),
        }
    }

    /// Admits `query` (stamped with the service clock) or sheds it with a
    /// reason.
    pub fn admit(&mut self, query: Query, admit_clock: f64) -> Result<u64, ShedReason> {
        if self.pending.len() >= self.capacity {
            return Err(ShedReason::QueueFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Admitted {
            seq,
            admit_clock,
            query,
        });
        Ok(seq)
    }

    /// Takes every admitted query, in arrival order.
    pub fn drain(&mut self) -> Vec<Admitted> {
        std::mem::take(&mut self.pending)
    }

    /// Queries currently waiting.
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// Total queries ever admitted.
    pub fn admitted_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Json, QueryOp};
    use cusha_algos::TraversalKind;

    fn bfs(source: u32) -> Query {
        Query {
            id: Json::Null,
            op: QueryOp::Traversal {
                kind: TraversalKind::Bfs,
                source,
            },
            deadline_ms: None,
            want_values: false,
        }
    }

    #[test]
    fn oversubscription_sheds_the_newcomer() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.admit(bfs(0), 0.0).is_ok());
        assert!(q.admit(bfs(1), 0.5).is_ok());
        assert_eq!(q.admit(bfs(2), 1.0), Err(ShedReason::QueueFull));
        // The admitted two are intact and in order.
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].seq, 0);
        assert_eq!(drained[1].seq, 1);
        assert_eq!(drained[1].admit_clock, 0.5);
        // Draining frees capacity.
        assert!(q.admit(bfs(2), 1.0).is_ok());
        assert_eq!(q.depth(), 1);
        assert_eq!(q.admitted_total(), 3);
    }
}
