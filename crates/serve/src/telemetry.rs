//! Per-query serve telemetry: query records, SLO tracking, and the
//! slow-query log.
//!
//! Every query that reaches a terminal state produces one [`QueryRecord`]
//! capturing the whole serving path — queue wait, which fused batch ran
//! it, warm vs. cold launch, cache hit, fault retries, modeled latency,
//! deadline slack, and the outcome. Records flow through a bounded ring
//! buffer ([`QueryLog`]; overflow is counted, never silent), feed a
//! sliding-window [`SloTracker`] that computes latency/error **burn
//! rates** against configurable objectives, and the slowest land in a
//! [`SlowQueryLog`] the CLI can dump via `--slow-log`.
//!
//! All times are **modeled seconds** (the service's deterministic clock),
//! so telemetry output is byte-reproducible like every other artifact.
//!
//! Burn-rate semantics (the standard SRE definition): an objective
//! grants an error budget — `1 - latency_target` of queries may exceed
//! the latency objective, `1 - availability_target` may fail. The burn
//! rate is the observed violation fraction over the window divided by
//! that budget: 1.0 means the budget is being consumed exactly at the
//! sustainable rate, above 1.0 the service is burning budget it does not
//! have. See DESIGN.md §4.7.

use cusha_obs::json::{push_f64, push_str_lit};
use std::collections::VecDeque;

/// Terminal state of a served query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Settled with a result (fresh or cached).
    Ok,
    /// Cancelled at an iteration boundary after its deadline expired.
    Deadline,
    /// Settled `failed` (fault exhaustion, watchdog, non-convergence).
    Failed,
    /// Shed at admission.
    Rejected,
}

impl QueryOutcome {
    /// Stable lower-case label (wire + JSON).
    pub fn label(self) -> &'static str {
        match self {
            QueryOutcome::Ok => "ok",
            QueryOutcome::Deadline => "deadline",
            QueryOutcome::Failed => "failed",
            QueryOutcome::Rejected => "rejected",
        }
    }
}

/// One query's complete serving record.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Admission sequence number (0 for queries settled at the door).
    pub seq: u64,
    /// Operation label (`bfs`, `reach`, `pagerank`, ...).
    pub op: &'static str,
    /// Modeled seconds spent waiting in the admission queue.
    pub queue_wait_s: f64,
    /// Id of the fused launch that ran the query (0 = no launch: cache
    /// hit or rejection).
    pub batch_id: u64,
    /// Number of queries fused into that launch.
    pub batch_width: u32,
    /// Whether the launch reused warm prepared state (layout already
    /// built) rather than building it first.
    pub warm: bool,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Fault retries the launch took before settling.
    pub retries: u32,
    /// Modeled seconds from admission to settlement.
    pub latency_s: f64,
    /// `deadline - latency` in modeled seconds (negative = violated);
    /// `None` when the query carried no deadline.
    pub deadline_slack_s: Option<f64>,
    /// Terminal state.
    pub outcome: QueryOutcome,
}

impl QueryRecord {
    /// Serializes the record as one compact JSON object (the slow-query
    /// log's line format).
    pub fn to_json(&self, out: &mut String) {
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"op\":");
        push_str_lit(out, self.op);
        out.push_str(",\"outcome\":");
        push_str_lit(out, self.outcome.label());
        out.push_str(",\"latency_ms\":");
        push_f64(out, self.latency_s * 1e3);
        out.push_str(",\"queue_wait_ms\":");
        push_f64(out, self.queue_wait_s * 1e3);
        out.push_str(",\"batch_id\":");
        out.push_str(&self.batch_id.to_string());
        out.push_str(",\"batch_width\":");
        out.push_str(&self.batch_width.to_string());
        out.push_str(",\"warm\":");
        out.push_str(if self.warm { "true" } else { "false" });
        out.push_str(",\"cache_hit\":");
        out.push_str(if self.cache_hit { "true" } else { "false" });
        out.push_str(",\"retries\":");
        out.push_str(&self.retries.to_string());
        out.push_str(",\"deadline_slack_ms\":");
        match self.deadline_slack_s {
            Some(s) => push_f64(out, s * 1e3),
            None => out.push_str("null"),
        }
        out.push('}');
    }
}

/// Bounded ring buffer of recent [`QueryRecord`]s. Overflow evicts the
/// oldest record and increments [`QueryLog::dropped`] — truncation is
/// visible, like the tracer's drop counter.
#[derive(Debug)]
pub struct QueryLog {
    capacity: usize,
    ring: VecDeque<QueryRecord>,
    dropped: u64,
}

impl QueryLog {
    /// A log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        QueryLog {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, rec: QueryRecord) {
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    /// Records currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &QueryRecord> {
        self.ring.iter()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Service-level objectives the tracker burns budget against.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Latency objective in modeled seconds: a query settling slower
    /// than this (or cancelled by deadline) violates the latency SLO.
    pub latency_objective_s: f64,
    /// Fraction of queries that must meet the latency objective
    /// (e.g. 0.99 → a 1% latency error budget).
    pub latency_target: f64,
    /// Fraction of queries that must not settle `failed`
    /// (e.g. 0.999 → a 0.1% availability error budget).
    pub availability_target: f64,
    /// Sliding-window size in queries.
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_objective_s: 0.050,
            latency_target: 0.99,
            availability_target: 0.999,
            window: 256,
        }
    }
}

/// Sliding-window SLO tracker.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    /// Per query: (violated latency objective, settled failed).
    window: VecDeque<(bool, bool)>,
}

impl SloTracker {
    /// A tracker over `cfg`'s objectives.
    pub fn new(cfg: SloConfig) -> Self {
        SloTracker {
            cfg,
            window: VecDeque::new(),
        }
    }

    /// The objectives in force.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Folds one settled query into the window. Rejections are admission
    /// control doing its job, not SLO violations — they are excluded.
    pub fn record(&mut self, rec: &QueryRecord) {
        if rec.outcome == QueryOutcome::Rejected {
            return;
        }
        let violated_latency =
            rec.outcome == QueryOutcome::Deadline || rec.latency_s > self.cfg.latency_objective_s;
        let errored = rec.outcome == QueryOutcome::Failed;
        if self.window.len() >= self.cfg.window.max(1) {
            self.window.pop_front();
        }
        self.window.push_back((violated_latency, errored));
    }

    /// Queries currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Latency burn rate over the window: violating fraction divided by
    /// the latency error budget (0 when the window is empty).
    pub fn latency_burn_rate(&self) -> f64 {
        self.burn(self.window.iter().filter(|(l, _)| *l).count(), {
            1.0 - self.cfg.latency_target
        })
    }

    /// Error burn rate over the window: failed fraction divided by the
    /// availability error budget (0 when the window is empty).
    pub fn error_burn_rate(&self) -> f64 {
        self.burn(self.window.iter().filter(|(_, e)| *e).count(), {
            1.0 - self.cfg.availability_target
        })
    }

    fn burn(&self, violations: usize, budget: f64) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let frac = violations as f64 / self.window.len() as f64;
        frac / budget.max(1e-9)
    }
}

/// The top-N slowest queries, kept sorted slowest-first.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    slowest: Vec<QueryRecord>,
}

impl SlowQueryLog {
    /// A log retaining the `capacity` slowest queries.
    pub fn new(capacity: usize) -> Self {
        SlowQueryLog {
            capacity: capacity.max(1),
            slowest: Vec::new(),
        }
    }

    /// Offers a record; it is kept if it ranks among the slowest.
    /// Rejections carry no meaningful latency and are skipped.
    pub fn offer(&mut self, rec: &QueryRecord) {
        if rec.outcome == QueryOutcome::Rejected {
            return;
        }
        let pos = self
            .slowest
            .partition_point(|r| r.latency_s >= rec.latency_s);
        if pos >= self.capacity {
            return;
        }
        self.slowest.insert(pos, rec.clone());
        self.slowest.truncate(self.capacity);
    }

    /// Retained records, slowest first.
    pub fn entries(&self) -> &[QueryRecord] {
        &self.slowest
    }

    /// Renders one JSON line per record, slowest first (the `--slow-log`
    /// file format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for rec in &self.slowest {
            rec.to_json(&mut out);
            out.push('\n');
        }
        out
    }
}

/// The service's telemetry bundle: ring buffer, SLO window, slow log.
#[derive(Debug)]
pub struct Telemetry {
    /// Recent query records.
    pub log: QueryLog,
    /// Sliding-window SLO state.
    pub slo: SloTracker,
    /// Slowest queries seen.
    pub slow: SlowQueryLog,
}

impl Telemetry {
    /// Builds the bundle.
    pub fn new(query_log_capacity: usize, slow_log_capacity: usize, slo: SloConfig) -> Self {
        Telemetry {
            log: QueryLog::new(query_log_capacity),
            slo: SloTracker::new(slo),
            slow: SlowQueryLog::new(slow_log_capacity),
        }
    }

    /// Routes one record through all three sinks.
    pub fn record(&mut self, rec: QueryRecord) {
        self.slo.record(&rec);
        self.slow.offer(&rec);
        self.log.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(latency_ms: f64, outcome: QueryOutcome) -> QueryRecord {
        QueryRecord {
            seq: 1,
            op: "bfs",
            queue_wait_s: 0.0,
            batch_id: 1,
            batch_width: 1,
            warm: true,
            cache_hit: false,
            retries: 0,
            latency_s: latency_ms / 1e3,
            deadline_slack_s: None,
            outcome,
        }
    }

    #[test]
    fn ring_counts_drops() {
        let mut log = QueryLog::new(2);
        for i in 0..5 {
            log.push(rec(i as f64, QueryOutcome::Ok));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        // Oldest evicted: the survivors are the two most recent.
        let kept: Vec<f64> = log.iter().map(|r| r.latency_s * 1e3).collect();
        assert_eq!(kept, vec![3.0, 4.0]);
    }

    #[test]
    fn burn_rates_measure_budget_consumption() {
        let cfg = SloConfig {
            latency_objective_s: 0.010,
            latency_target: 0.9,       // 10% budget
            availability_target: 0.95, // 5% budget
            window: 100,
        };
        let mut slo = SloTracker::new(cfg);
        // 10 queries: 1 slow, 1 failed, 8 fine.
        for _ in 0..8 {
            slo.record(&rec(1.0, QueryOutcome::Ok));
        }
        slo.record(&rec(50.0, QueryOutcome::Ok));
        slo.record(&rec(1.0, QueryOutcome::Failed));
        // 10% violating latency against a 10% budget → burn 1.0.
        assert!((slo.latency_burn_rate() - 1.0).abs() < 1e-9);
        // 10% failing against a 5% budget → burn 2.0.
        assert!((slo.error_burn_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_burns_nothing() {
        let slo = SloTracker::new(SloConfig::default());
        assert_eq!(slo.latency_burn_rate(), 0.0);
        assert_eq!(slo.error_burn_rate(), 0.0);
    }

    #[test]
    fn deadline_cancellations_violate_latency() {
        let mut slo = SloTracker::new(SloConfig {
            latency_objective_s: 10.0,
            latency_target: 0.5,
            availability_target: 0.5,
            window: 10,
        });
        // Fast but deadline-cancelled: still a latency violation.
        slo.record(&rec(0.1, QueryOutcome::Deadline));
        assert!(slo.latency_burn_rate() > 0.0);
        assert_eq!(slo.error_burn_rate(), 0.0);
    }

    #[test]
    fn rejections_are_excluded() {
        let mut slo = SloTracker::new(SloConfig::default());
        slo.record(&rec(1e9, QueryOutcome::Rejected));
        assert_eq!(slo.window_len(), 0);
    }

    #[test]
    fn window_slides() {
        let mut slo = SloTracker::new(SloConfig {
            latency_objective_s: 0.010,
            latency_target: 0.5,
            availability_target: 0.5,
            window: 4,
        });
        for _ in 0..4 {
            slo.record(&rec(50.0, QueryOutcome::Ok)); // all violating
        }
        let burn_full = slo.latency_burn_rate();
        for _ in 0..4 {
            slo.record(&rec(1.0, QueryOutcome::Ok)); // all fine
        }
        assert!(burn_full > 0.0);
        assert_eq!(slo.latency_burn_rate(), 0.0, "old violations age out");
    }

    #[test]
    fn slow_log_keeps_the_slowest() {
        let mut slow = SlowQueryLog::new(2);
        for ms in [5.0, 30.0, 1.0, 20.0] {
            slow.offer(&rec(ms, QueryOutcome::Ok));
        }
        let kept: Vec<f64> = slow.entries().iter().map(|r| r.latency_s * 1e3).collect();
        assert_eq!(kept, vec![30.0, 20.0]);
        let text = slow.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"seq\":"));
    }

    #[test]
    fn record_json_shape() {
        let mut out = String::new();
        QueryRecord {
            seq: 7,
            op: "reach",
            queue_wait_s: 0.001,
            batch_id: 3,
            batch_width: 4,
            warm: false,
            cache_hit: false,
            retries: 2,
            latency_s: 0.025,
            deadline_slack_s: Some(-0.005),
            outcome: QueryOutcome::Deadline,
        }
        .to_json(&mut out);
        assert!(out.contains("\"op\":\"reach\""));
        assert!(out.contains("\"outcome\":\"deadline\""));
        assert!(out.contains("\"latency_ms\":25"));
        assert!(out.contains("\"deadline_slack_ms\":-5"));
        assert!(out.contains("\"retries\":2"));
        // Parses back as valid JSON.
        assert!(cusha_obs::parse_json(&out).is_ok());
    }
}
