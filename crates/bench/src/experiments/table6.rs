//! Table 6: speedup ranges of CuSha-GS and CuSha-CW over MTCPU-CSR.
//!
//! The range minimum is the speedup over the best thread count, the maximum
//! over the single-threaded run (as the paper notes). MTCPU times are real
//! wall-clock measurements while CuSha times are modeled, so this artifact
//! claims shape (which benchmarks/graphs benefit most), not the absolute
//! ratio — see EXPERIMENTS.md.

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::MatrixResult;
use crate::table::{fmt_speedup, Table};
use cusha_graph::surrogates::Dataset;

fn cell_speedups(
    matrix: &MatrixResult,
    ds: Dataset,
    b: Benchmark,
    engine: Engine,
) -> Option<(f64, f64)> {
    let own = matrix.get(ds, b, engine)?.stats.total_ms();
    let (cpu_lo, cpu_hi) = matrix.mtcpu_range_ms(ds, b)?;
    Some((cpu_lo / own, cpu_hi / own))
}

fn avg_range(items: &[(f64, f64)]) -> Option<(f64, f64)> {
    if items.is_empty() {
        return None;
    }
    let n = items.len() as f64;
    Some((
        items.iter().map(|x| x.0).sum::<f64>() / n,
        items.iter().map(|x| x.1).sum::<f64>() / n,
    ))
}

fn fmt_range(r: Option<(f64, f64)>) -> String {
    match r {
        Some((lo, hi)) => format!("{}-{}", fmt_speedup(lo), fmt_speedup(hi)),
        None => "-".into(),
    }
}

/// Renders Table 6 from the shared result matrix.
pub fn run(matrix: &MatrixResult) -> String {
    let mut t = Table::new(format!(
        "Table 6: speedups over MTCPU-CSR (scale 1/{}; modeled-GPU vs real-CPU, shape only)",
        matrix.scale
    ))
    .header(["", "CuSha-GS over MTCPU-CSR", "CuSha-CW over MTCPU-CSR"]);
    t.row(["-- averages across input graphs --", "", ""]);
    for b in Benchmark::ALL {
        let collect = |engine| {
            let v: Vec<(f64, f64)> = Dataset::ALL
                .iter()
                .filter_map(|&ds| cell_speedups(matrix, ds, b, engine))
                .collect();
            avg_range(&v)
        };
        let gs = collect(Engine::CuShaGs);
        let cw = collect(Engine::CuShaCw);
        if gs.is_some() || cw.is_some() {
            t.row([b.name().to_string(), fmt_range(gs), fmt_range(cw)]);
        }
    }
    t.row(["-- averages across benchmarks --", "", ""]);
    for ds in Dataset::ALL {
        let collect = |engine| {
            let v: Vec<(f64, f64)> = Benchmark::ALL
                .iter()
                .filter_map(|&b| cell_speedups(matrix, ds, b, engine))
                .collect();
            avg_range(&v)
        };
        let gs = collect(Engine::CuShaGs);
        let cw = collect(Engine::CuShaCw);
        if gs.is_some() || cw.is_some() {
            t.row([ds.name().to_string(), fmt_range(gs), fmt_range(cw)]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;

    #[test]
    fn mtcpu_speedups_render() {
        let m = run_matrix(
            &[Dataset::Amazon0312],
            &[Benchmark::Bfs],
            &[Engine::CuShaCw, Engine::Mtcpu(1), Engine::Mtcpu(4)],
            2048,
            300,
            false,
        );
        let s = run(&m);
        assert!(s.contains("BFS"));
        assert!(s.contains('x'));
    }
}
