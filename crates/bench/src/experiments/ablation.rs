//! Ablation studies (extension, not a paper artifact): quantifies the
//! design choices DESIGN.md §4.4 lists.
//!
//! * the shard-size selection rule of Section 4 vs mis-sized shards,
//! * shared memory per SM (the paper's concluding prediction),
//! * VWC outlier deferral (the related-work enhancement of \[12\]).

use crate::bench_defs::default_source;
use crate::experiments::{rmat_sweep_graph, scaled_n, Ctx};
use crate::table::{fmt_ms, Table};
use cusha_algos::Sssp;
use cusha_baselines::{run_vwc, VwcConfig};
use cusha_core::{run, CuShaConfig, Repr};
use cusha_simt::DeviceConfig;

/// Renders the ablation report.
pub fn run_all(ctx: &Ctx) -> String {
    let mut out = String::new();
    let g = rmat_sweep_graph(67_000_000, 16_000_000, ctx.rmat_scale);
    let prog = Sssp::new(default_source(&g));

    // (a) Shard-size rule: autotuned vs fixed sizes.
    let mut a = Table::new(format!(
        "Ablation (a): shard-size selection, SSSP on 67_16 (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header(["|N| (scaled)", "GS ms", "CW ms"]);
    let autotuned = {
        let cfg = CuShaConfig::new(Repr::GShards);
        cusha_core::select_vertices_per_shard(
            g.num_vertices() as u64,
            g.num_edges() as u64,
            4,
            &cfg.device,
            cfg.resident_blocks,
        )
    };
    let mut sizes: Vec<(String, u32)> = [512u32, 3072, 6144]
        .iter()
        .map(|&nf| {
            (
                format!("{}", scaled_n(nf, ctx.rmat_scale)),
                scaled_n(nf, ctx.rmat_scale),
            )
        })
        .collect();
    sizes.push((format!("{autotuned} (autotuned)"), autotuned));
    for (label, n) in sizes {
        let mut ms = [0.0f64; 2];
        for (i, repr) in [Repr::GShards, Repr::ConcatWindows].into_iter().enumerate() {
            let mut cfg = CuShaConfig::new(repr).with_vertices_per_shard(n);
            cfg.max_iterations = ctx.max_iterations;
            ms[i] = run(&prog, &g, &cfg).stats.total_ms();
        }
        a.row([label, fmt_ms(ms[0]), fmt_ms(ms[1])]);
    }
    out.push_str(&a.render());
    out.push('\n');

    // (b) Shared memory per SM: the paper's concluding claim.
    let mut bt = Table::new(format!(
        "Ablation (b): shared memory per SM, SSSP on 67_16 (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header(["Device", "autotuned |N|", "GS ms", "CW ms"]);
    for dev in [
        DeviceConfig::gtx680(),
        DeviceConfig::gtx780(),
        DeviceConfig::big_shared(),
    ] {
        let n = cusha_core::select_vertices_per_shard(
            g.num_vertices() as u64,
            g.num_edges() as u64,
            4,
            &dev,
            2,
        );
        let mut ms = [0.0f64; 2];
        for (i, repr) in [Repr::GShards, Repr::ConcatWindows].into_iter().enumerate() {
            let mut cfg = CuShaConfig::new(repr);
            cfg.device = dev.clone();
            cfg.max_iterations = ctx.max_iterations;
            ms[i] = run(&prog, &g, &cfg).stats.total_ms();
        }
        bt.row([
            dev.name.to_string(),
            n.to_string(),
            fmt_ms(ms[0]),
            fmt_ms(ms[1]),
        ]);
    }
    out.push_str(&bt.render());
    out.push('\n');

    // (c) VWC outlier deferral.
    let mut ct = Table::new(format!(
        "Ablation (c): VWC outlier deferral, SSSP on 67_16 (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header([
        "Virtual warp",
        "plain ms",
        "deferred(>64) ms",
        "plain warp eff",
        "deferred warp eff",
    ]);
    for vw in [2usize, 8, 32] {
        let mut plain_cfg = VwcConfig::new(vw);
        plain_cfg.max_iterations = ctx.max_iterations;
        let plain = run_vwc(&prog, &g, &plain_cfg).stats;
        let mut def_cfg = VwcConfig::new(vw).with_outlier_deferral(64);
        def_cfg.max_iterations = ctx.max_iterations;
        let def = run_vwc(&prog, &g, &def_cfg).stats;
        ct.row([
            format!("{vw}"),
            fmt_ms(plain.total_ms()),
            fmt_ms(def.total_ms()),
            format!("{:.1}%", plain.kernel.warp_execution_efficiency() * 100.0),
            format!("{:.1}%", def.kernel.warp_execution_efficiency() * 100.0),
        ]);
    }
    out.push_str(&ct.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_report_renders_all_three_sections() {
        let ctx = Ctx {
            rmat_scale: 4096,
            max_iterations: 60,
            ..Default::default()
        };
        let s = run_all(&ctx);
        assert!(s.contains("Ablation (a)"));
        assert!(s.contains("autotuned"));
        assert!(s.contains("Ablation (b)"));
        assert!(s.contains("96 KiB"));
        assert!(s.contains("Ablation (c)"));
    }
}
