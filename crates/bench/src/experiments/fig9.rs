//! Figure 9: device memory occupied by CSR, G-Shards and CW, per input
//! graph, min/avg/max across the eight benchmarks, normalized to the CSR
//! average.
//!
//! This artifact is pure arithmetic over the paper's full-size graphs (no
//! simulation): footprints depend only on |V|, |E|, the per-benchmark value
//! sizes, and the autotuned shard count.

use crate::bench_defs::Benchmark;
use crate::experiments::Ctx;
use crate::table::Table;
use cusha_core::memsize::{csr_bytes, cw_bytes, gshards_bytes};
use cusha_core::select_vertices_per_shard;
use cusha_graph::surrogates::Dataset;
use cusha_simt::DeviceConfig;

struct Stat {
    min: f64,
    avg: f64,
    max: f64,
}

fn stat(xs: &[f64]) -> Stat {
    let n = xs.len() as f64;
    Stat {
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        avg: xs.iter().sum::<f64>() / n,
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Renders Figure 9 (full paper graph sizes; `ctx` is unused except for
/// symmetry with the other structural artifacts).
pub fn run(_ctx: &Ctx) -> String {
    let dev = DeviceConfig::gtx780();
    let mut t = Table::new(
        "Figure 9: memory footprint normalized to per-graph CSR average (full paper sizes)",
    )
    .header([
        "Graph",
        "CSR min/avg/max",
        "G-Shards min/avg/max",
        "CW min/avg/max",
    ]);
    for ds in Dataset::ALL {
        let (e, v) = ds.paper_size();
        let mut csr = Vec::new();
        let mut gsh = Vec::new();
        let mut cw = Vec::new();
        for b in Benchmark::ALL {
            let s = b.value_sizes();
            let n_per = select_vertices_per_shard(v, e, s.vertex.max(1), &dev, 2) as u64;
            let p = v.div_ceil(n_per).max(1);
            csr.push(csr_bytes(v, e, s) as f64);
            gsh.push(gshards_bytes(v, e, p, s) as f64);
            cw.push(cw_bytes(v, e, p, s) as f64);
        }
        let base = csr.iter().sum::<f64>() / csr.len() as f64;
        let f = |s: Stat| {
            format!(
                "{:.2}/{:.2}/{:.2}",
                s.min / base,
                s.avg / base,
                s.max / base
            )
        };
        t.row([
            ds.name().to_string(),
            f(stat(&csr)),
            f(stat(&gsh)),
            f(stat(&cw)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Ctx;

    #[test]
    fn gshards_and_cw_exceed_csr() {
        let s = run(&Ctx::default());
        assert!(s.contains("LiveJournal"));
        // Spot-check the ordering numerically rather than parsing the table.
        let dev = DeviceConfig::gtx780();
        let (e, v) = Dataset::LiveJournal.paper_size();
        let sz = Benchmark::Sssp.value_sizes();
        let n_per = select_vertices_per_shard(v, e, sz.vertex, &dev, 2) as u64;
        let p = v.div_ceil(n_per);
        let c = csr_bytes(v, e, sz) as f64;
        let g = gshards_bytes(v, e, p, sz) as f64;
        let w = cw_bytes(v, e, p, sz) as f64;
        assert!(c < g && g < w);
        // Paper's averages: GS ~2.09x, CW ~2.58x; allow a generous band.
        assert!((1.5..3.0).contains(&(g / c)), "GS/CSR = {}", g / c);
        assert!((1.8..3.5).contains(&(w / c)), "CW/CSR = {}", w / c);
    }
}
