//! Figure 7: BFS traversal progress — vertices updated per iteration over
//! cumulative time, for CuSha-CW, CuSha-GS, and the best VWC-CSR.

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::{CellResult, MatrixResult};
use crate::table::Table;
use cusha_graph::surrogates::Dataset;

fn series(cell: &CellResult) -> Vec<(f64, u64)> {
    let mut t = 0.0;
    cell.stats
        .per_iteration
        .iter()
        .map(|it| {
            t += it.seconds;
            (t * 1e3, it.updated_vertices)
        })
        .collect()
}

/// Renders Figure 7 from the shared result matrix.
pub fn run(matrix: &MatrixResult) -> String {
    let mut out = String::new();
    for ds in Dataset::ALL {
        let cw = matrix.get(ds, Benchmark::Bfs, Engine::CuShaCw);
        let gs = matrix.get(ds, Benchmark::Bfs, Engine::CuShaGs);
        let vwc = matrix.best_vwc(ds, Benchmark::Bfs);
        let engines: Vec<(&str, &CellResult)> = [
            cw.map(|c| ("CuSha-CW", c)),
            gs.map(|c| ("CuSha-GS", c)),
            vwc.map(|c| ("best VWC-CSR", c)),
        ]
        .into_iter()
        .flatten()
        .collect();
        if engines.is_empty() {
            continue;
        }
        let mut t = Table::new(format!(
            "Figure 7 [{}]: vertices updated per BFS iteration over time (scale 1/{})",
            ds.name(),
            matrix.scale
        ))
        .header(["Engine", "iter", "cumulative ms", "updated vertices"]);
        for (label, cell) in engines {
            for (i, (ms, updated)) in series(cell).into_iter().enumerate() {
                t.row([
                    if i == 0 {
                        label.to_string()
                    } else {
                        String::new()
                    },
                    (i + 1).to_string(),
                    format!("{ms:.3}"),
                    updated.to_string(),
                ]);
            }
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;

    #[test]
    fn series_accumulates_time() {
        let m = run_matrix(
            &[Dataset::Amazon0312],
            &[Benchmark::Bfs],
            &[Engine::CuShaCw, Engine::Vwc(8)],
            2048,
            300,
            false,
        );
        let cell = m
            .get(Dataset::Amazon0312, Benchmark::Bfs, Engine::CuShaCw)
            .unwrap();
        let s = series(cell);
        assert_eq!(s.len(), cell.stats.iterations as usize);
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0), "time is cumulative");
        let rendered = run(&m);
        assert!(rendered.contains("CuSha-CW"));
        assert!(rendered.contains("best VWC-CSR"));
    }
}
