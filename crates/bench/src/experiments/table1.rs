//! Table 1: the real-world input graphs (paper sizes vs generated
//! surrogates at the chosen scale).

use crate::experiments::Ctx;
use crate::table::Table;
use cusha_graph::surrogates::Dataset;

/// Renders Table 1.
pub fn run(ctx: &Ctx) -> String {
    let mut t = Table::new(format!(
        "Table 1: input graphs (surrogates at 1/{} scale)",
        ctx.scale
    ))
    .header([
        "Graph",
        "Paper edges",
        "Paper vertices",
        "Surrogate edges",
        "Surrogate vertices",
        "|E|/|V|",
    ]);
    for ds in Dataset::ALL {
        let (pe, pv) = ds.paper_size();
        let g = ds.generate(ctx.scale);
        t.row([
            ds.name().to_string(),
            pe.to_string(),
            pv.to_string(),
            g.num_edges().to_string(),
            g.num_vertices().to_string(),
            format!("{:.2}", g.avg_degree()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_six_graphs() {
        let s = run(&Ctx {
            scale: 1024,
            ..Default::default()
        });
        for ds in Dataset::ALL {
            assert!(s.contains(ds.name()), "missing {ds}");
        }
        assert!(s.contains("68993773"), "paper LiveJournal size");
    }
}
