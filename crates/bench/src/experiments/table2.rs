//! Table 2: min–max global-memory-access and warp-execution efficiency of
//! VWC-CSR across all graphs and virtual-warp configurations.

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::MatrixResult;
use crate::table::{fmt_pct, Table};

/// Renders Table 2 from the shared result matrix (VWC cells only).
pub fn run(matrix: &MatrixResult) -> String {
    let mut t = Table::new(format!(
        "Table 2: VWC-CSR efficiency ranges across graphs (scale 1/{})",
        matrix.scale
    ))
    .header(["Benchmark", "Global memory accesses", "Warp execution"]);
    for b in Benchmark::ALL {
        let cells: Vec<_> = matrix
            .cells
            .iter()
            .filter(|c| c.benchmark == b && matches!(c.engine, Engine::Vwc(_)))
            .collect();
        if cells.is_empty() {
            continue;
        }
        let gmem: Vec<f64> = cells
            .iter()
            .map(|c| c.stats.kernel.gmem_efficiency())
            .collect();
        let warp: Vec<f64> = cells
            .iter()
            .map(|c| c.stats.kernel.warp_execution_efficiency())
            .collect();
        let rng = |v: &[f64]| {
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            format!("{}-{}", fmt_pct(lo), fmt_pct(hi))
        };
        t.row([b.name().to_string(), rng(&gmem), rng(&warp)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;
    use cusha_graph::surrogates::Dataset;

    #[test]
    fn reports_ranges_for_present_benchmarks() {
        let m = run_matrix(
            &[Dataset::Amazon0312],
            &[Benchmark::Bfs],
            &[Engine::Vwc(4), Engine::Vwc(32)],
            2048,
            300,
            false,
        );
        let s = run(&m);
        assert!(s.contains("BFS"));
        assert!(s.contains('%'));
        assert!(!s.contains("SSSP"), "absent benchmarks are skipped");
    }
}
