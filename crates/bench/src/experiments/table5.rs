//! Table 5: speedup ranges of CuSha-GS and CuSha-CW over VWC-CSR,
//! averaged across inputs (per benchmark) and across benchmarks (per input).
//!
//! As in the paper, a range's minimum is the speedup over the *best* VWC
//! virtual-warp configuration and its maximum over the worst one.

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::MatrixResult;
use crate::table::{fmt_speedup, Table};
use cusha_graph::surrogates::Dataset;

/// `(min, max)` speedup of `engine` over the VWC range for one cell.
fn cell_speedups(
    matrix: &MatrixResult,
    ds: Dataset,
    b: Benchmark,
    engine: Engine,
) -> Option<(f64, f64)> {
    let own = matrix.get(ds, b, engine)?.stats.total_ms();
    let (vwc_lo, vwc_hi) = matrix.vwc_range_ms(ds, b)?;
    Some((vwc_lo / own, vwc_hi / own))
}

fn avg_range(items: &[(f64, f64)]) -> Option<(f64, f64)> {
    if items.is_empty() {
        return None;
    }
    let n = items.len() as f64;
    Some((
        items.iter().map(|x| x.0).sum::<f64>() / n,
        items.iter().map(|x| x.1).sum::<f64>() / n,
    ))
}

fn fmt_range(r: Option<(f64, f64)>) -> String {
    match r {
        Some((lo, hi)) => format!("{}-{}", fmt_speedup(lo), fmt_speedup(hi)),
        None => "-".into(),
    }
}

/// Renders Table 5 from the shared result matrix.
pub fn run(matrix: &MatrixResult) -> String {
    let mut t = Table::new(format!(
        "Table 5: speedups over VWC-CSR (scale 1/{})",
        matrix.scale
    ))
    .header(["", "CuSha-GS over VWC-CSR", "CuSha-CW over VWC-CSR"]);
    t.row(["-- averages across input graphs --", "", ""]);
    for b in Benchmark::ALL {
        let collect = |engine| {
            let v: Vec<(f64, f64)> = Dataset::ALL
                .iter()
                .filter_map(|&ds| cell_speedups(matrix, ds, b, engine))
                .collect();
            avg_range(&v)
        };
        let gs = collect(Engine::CuShaGs);
        let cw = collect(Engine::CuShaCw);
        if gs.is_some() || cw.is_some() {
            t.row([b.name().to_string(), fmt_range(gs), fmt_range(cw)]);
        }
    }
    t.row(["-- averages across benchmarks --", "", ""]);
    for ds in Dataset::ALL {
        let collect = |engine| {
            let v: Vec<(f64, f64)> = Benchmark::ALL
                .iter()
                .filter_map(|&b| cell_speedups(matrix, ds, b, engine))
                .collect();
            avg_range(&v)
        };
        let gs = collect(Engine::CuShaGs);
        let cw = collect(Engine::CuShaCw);
        if gs.is_some() || cw.is_some() {
            t.row([ds.name().to_string(), fmt_range(gs), fmt_range(cw)]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;

    #[test]
    fn speedup_ranges_render() {
        let m = run_matrix(
            &[Dataset::Amazon0312],
            &[Benchmark::Bfs],
            &[
                Engine::CuShaGs,
                Engine::CuShaCw,
                Engine::Vwc(4),
                Engine::Vwc(32),
            ],
            2048,
            300,
            false,
        );
        let s = run(&m);
        assert!(s.contains("BFS"));
        assert!(s.contains("Amazon0312"));
        assert!(s.contains('x'), "speedups formatted as Nx");
    }

    #[test]
    fn min_is_not_larger_than_max() {
        let m = run_matrix(
            &[Dataset::WebGoogle],
            &[Benchmark::Sssp],
            &[Engine::CuShaCw, Engine::Vwc(2), Engine::Vwc(16)],
            2048,
            300,
            false,
        );
        let (lo, hi) =
            cell_speedups(&m, Dataset::WebGoogle, Benchmark::Sssp, Engine::CuShaCw).unwrap();
        assert!(lo <= hi);
    }
}
