//! Table 7: Traversed Edges Per Second (TEPS) for BFS with CuSha-CW,
//! CuSha-GS, and the best VWC-CSR configuration per graph.

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::MatrixResult;
use crate::table::Table;
use cusha_graph::surrogates::Dataset;

fn fmt_teps(teps: f64) -> String {
    if teps >= 1e9 {
        format!("{:.2} G", teps / 1e9)
    } else if teps >= 1e6 {
        format!("{:.1} M", teps / 1e6)
    } else {
        format!("{:.0} K", teps / 1e3)
    }
}

/// Renders Table 7 from the shared result matrix.
pub fn run(matrix: &MatrixResult) -> String {
    let mut t = Table::new(format!("Table 7: TEPS for BFS (scale 1/{})", matrix.scale)).header([
        "Graph",
        "CuSha-CW",
        "CuSha-GS",
        "Best VWC-CSR",
    ]);
    for ds in Dataset::ALL {
        let edges = matrix
            .graph_sizes
            .iter()
            .find(|(d, _, _)| *d == ds)
            .map(|(_, e, _)| *e);
        let Some(edges) = edges else { continue };
        let teps_of = |cell: Option<&crate::matrix::CellResult>| {
            cell.map(|c| fmt_teps(c.stats.teps(edges)))
                .unwrap_or_else(|| "-".into())
        };
        let cw = matrix.get(ds, Benchmark::Bfs, Engine::CuShaCw);
        let gs = matrix.get(ds, Benchmark::Bfs, Engine::CuShaGs);
        let vwc = matrix.best_vwc(ds, Benchmark::Bfs);
        if cw.is_some() || gs.is_some() || vwc.is_some() {
            t.row([
                ds.name().to_string(),
                teps_of(cw),
                teps_of(gs),
                teps_of(vwc),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;

    #[test]
    fn teps_render_with_units() {
        let m = run_matrix(
            &[Dataset::Amazon0312],
            &[Benchmark::Bfs],
            &[Engine::CuShaCw, Engine::CuShaGs, Engine::Vwc(8)],
            2048,
            300,
            false,
        );
        let s = run(&m);
        assert!(s.contains("Amazon0312"));
        assert!(s.contains(" M") || s.contains(" K") || s.contains(" G"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_teps(2.5e9), "2.50 G");
        assert_eq!(fmt_teps(929.1e6), "929.1 M");
        assert_eq!(fmt_teps(42_000.0), "42 K");
    }
}
