//! Figure 11: frequency of window sizes (0..=128) under varying (a) graph
//! size, (b) sparsity, and (c) vertices-per-shard `|N|`, on RMAT graphs.
//!
//! Graphs are scaled by `ctx.rmat_scale`; `|N|` is scaled by its square
//! root so window sizes are preserved (`|E||N|²/|V|²`).

use crate::experiments::{rmat_sweep_graph, scaled_n, Ctx};
use crate::table::{fmt_pct, Table};
use cusha_core::windows::WindowHistogram;
use cusha_core::GShards;

const CAP: usize = 128;

fn histogram_row(name: &str, edges: u64, vertices: u64, n_full: u32, ctx: &Ctx) -> [String; 6] {
    let g = rmat_sweep_graph(edges, vertices, ctx.rmat_scale);
    let n = scaled_n(n_full, ctx.rmat_scale);
    let gs = GShards::from_graph(&g, n);
    let h = WindowHistogram::of(&gs, CAP);
    let bucket = |lo: usize, hi: usize| -> u64 { h.counts[lo..=hi].iter().sum() };
    [
        format!("{name} |N|={n_full}"),
        format!("{:.1}", h.mean),
        fmt_pct(h.sub_warp_fraction()),
        bucket(0, 7).to_string(),
        bucket(8, 31).to_string(),
        (h.total_windows - bucket(0, 31)).to_string(),
    ]
}

/// Renders Figure 11 (all three panels).
pub fn run(ctx: &Ctx) -> String {
    let header = [
        "Graph",
        "mean window",
        "windows < warp",
        "size 0-7",
        "size 8-31",
        "size >= 32",
    ];
    let mut out = String::new();

    let mut a = Table::new(format!(
        "Figure 11(a): graph size effect, |N|=3k full-scale (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header(header);
    for (name, e, v) in [
        ("16_2", 16_000_000u64, 2_000_000u64),
        ("67_8", 67_000_000, 8_000_000),
        ("134_16", 134_000_000, 16_000_000),
    ] {
        a.row(histogram_row(name, e, v, 3072, ctx));
    }
    out.push_str(&a.render());
    out.push('\n');

    let mut b = Table::new(format!(
        "Figure 11(b): sparsity effect, |E|=67M, |N|=3k full-scale (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header(header);
    for (name, e, v) in [
        ("67_4", 67_000_000u64, 4_000_000u64),
        ("67_8", 67_000_000, 8_000_000),
        ("67_16", 67_000_000, 16_000_000),
    ] {
        b.row(histogram_row(name, e, v, 3072, ctx));
    }
    out.push_str(&b.render());
    out.push('\n');

    let mut c = Table::new(format!(
        "Figure 11(c): |N| effect on 67_8 (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header(header);
    for n_full in [1024u32, 2048, 3072, 6144] {
        c.row(histogram_row("67_8", 67_000_000, 8_000_000, n_full, ctx));
    }
    out.push_str(&c.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Ctx {
        Ctx {
            rmat_scale: 4096,
            ..Default::default()
        }
    }

    #[test]
    fn sparser_graphs_have_more_subwarp_windows() {
        let c = ctx();
        let dense = histogram_row("67_4", 67_000_000, 4_000_000, 3072, &c);
        let sparse = histogram_row("67_16", 67_000_000, 16_000_000, 3072, &c);
        let mean_dense: f64 = dense[1].parse().unwrap();
        let mean_sparse: f64 = sparse[1].parse().unwrap();
        assert!(mean_sparse < mean_dense);
    }

    #[test]
    fn larger_n_grows_windows() {
        let c = ctx();
        let small = histogram_row("67_8", 67_000_000, 8_000_000, 1024, &c);
        let large = histogram_row("67_8", 67_000_000, 8_000_000, 6144, &c);
        let m_small: f64 = small[1].parse().unwrap();
        let m_large: f64 = large[1].parse().unwrap();
        assert!(m_large > m_small * 4.0, "{m_small} -> {m_large}");
    }

    #[test]
    fn renders_three_panels() {
        let s = run(&ctx());
        assert!(s.contains("Figure 11(a)"));
        assert!(s.contains("Figure 11(b)"));
        assert!(s.contains("Figure 11(c)"));
    }
}
