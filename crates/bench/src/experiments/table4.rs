//! Table 4: raw running times (ms, including host-device transfers) of
//! CuSha-CW, CuSha-GS and VWC-CSR (min–max across virtual warp sizes).

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::MatrixResult;
use crate::table::{fmt_ms, Table};
use cusha_graph::surrogates::Dataset;

fn cell(matrix: &MatrixResult, ds: Dataset, b: Benchmark, row: &str) -> String {
    let v = match row {
        "CuSha-CW" => matrix
            .get(ds, b, Engine::CuShaCw)
            .map(|c| fmt_ms(c.stats.total_ms())),
        "CuSha-GS" => matrix
            .get(ds, b, Engine::CuShaGs)
            .map(|c| fmt_ms(c.stats.total_ms())),
        _ => matrix
            .vwc_range_ms(ds, b)
            .map(|(lo, hi)| format!("{}-{}", fmt_ms(lo), fmt_ms(hi))),
    };
    v.unwrap_or_else(|| "-".into())
}

/// Renders Table 4 from the shared result matrix.
pub fn run(matrix: &MatrixResult) -> String {
    let mut t = Table::new(format!(
        "Table 4: running times in ms, transfers included (scale 1/{})",
        matrix.scale
    ))
    .header(
        ["Graph", "Engine"]
            .into_iter()
            .map(String::from)
            .chain(Benchmark::ALL.iter().map(|b| b.name().to_string())),
    );
    for ds in Dataset::ALL {
        for label in ["CuSha-CW", "CuSha-GS", "VWC-CSR"] {
            let cells: Vec<String> = Benchmark::ALL
                .iter()
                .map(|&b| cell(matrix, ds, b, label))
                .collect();
            if cells.iter().any(|c| c != "-") {
                let mut row = vec![
                    if label == "CuSha-CW" {
                        ds.name().to_string()
                    } else {
                        String::new()
                    },
                    label.to_string(),
                ];
                row.extend(cells);
                t.row(row);
            }
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;

    #[test]
    fn renders_rows_per_engine() {
        let m = run_matrix(
            &[Dataset::WebGoogle],
            &[Benchmark::Bfs],
            &[
                Engine::CuShaGs,
                Engine::CuShaCw,
                Engine::Vwc(8),
                Engine::Vwc(16),
            ],
            2048,
            300,
            false,
        );
        let s = run(&m);
        assert!(s.contains("CuSha-CW"));
        assert!(s.contains("CuSha-GS"));
        assert!(s.contains("VWC-CSR"));
        assert!(s.contains('-'), "VWC shows a range");
    }
}
