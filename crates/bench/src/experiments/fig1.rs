//! Figure 1: degree distribution of the input graphs (log-binned).

use crate::experiments::Ctx;
use crate::table::Table;
use cusha_graph::degree::{DegreeDistribution, Direction};
use cusha_graph::surrogates::Dataset;

/// Renders Figure 1 as a log₂-binned histogram per graph.
pub fn run(ctx: &Ctx) -> String {
    let mut out = String::new();
    for ds in Dataset::ALL {
        let g = ds.generate(ctx.scale);
        let d = DegreeDistribution::of(&g, Direction::In);
        let mut t = Table::new(format!(
            "Figure 1 [{}]: vertices per in-degree bin (scale 1/{}, skew {:.1})",
            ds.name(),
            ctx.scale,
            d.skew()
        ))
        .header(["degree >=", "vertices"]);
        t.row(["0 (isolated)".to_string(), d.isolated.to_string()]);
        for (lo, count) in d.log_binned() {
            t.row([lo.to_string(), count.to_string()]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn social_graph_has_longer_tail_than_road() {
        let s = run(&Ctx {
            scale: 1024,
            ..Default::default()
        });
        assert!(s.contains("LiveJournal"));
        assert!(s.contains("RoadNetCA"));
        // The road network section must not contain large degree bins.
        let road_section = s.split("RoadNetCA").nth(1).unwrap();
        let road_part = road_section.split("==").next().unwrap();
        assert!(!road_part.contains("\n128"), "road degrees stay small");
    }
}
