//! Multi-GPU scaling: modeled speedup and halo-exchange cost of the fleet
//! engine, devices ∈ {1, 2, 4, 8}, over the Table-1 dataset surrogates.
//!
//! This artifact goes beyond the paper (CuSha's evaluation is single-GPU):
//! it quantifies how the shard schedule scales when the shard sequence is
//! edge-balanced across a [`cusha_simt::DeviceFleet`] and stage-4 halo
//! updates cross a modeled PCIe interconnect once per iteration. Reported
//! per dataset and device count: modeled time, speedup over one device,
//! the fraction of modeled time spent in the exchange, and the partition's
//! edge-count load imbalance. Outputs are bit-identical across device
//! counts (asserted here), so the sweep measures *timing* only.

use crate::experiments::Ctx;
use crate::table::{fmt_ms, fmt_pct, fmt_speedup, Table};
use cusha_algos::PageRank;
use cusha_core::{run_multi, CuShaConfig, MultiConfig};
use cusha_graph::surrogates::Dataset;
use cusha_obs::{log, Level, MetricsRegistry};

/// Device counts swept per dataset.
pub const DEVICE_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One (dataset, devices) cell of the sweep.
pub struct ScalingCell {
    /// Fleet size.
    pub devices: usize,
    /// End-to-end modeled seconds.
    pub modeled_seconds: f64,
    /// Speedup over the single-device fleet.
    pub speedup: f64,
    /// Halo bytes exchanged over the interconnect.
    pub exchange_bytes: u64,
    /// Modeled interconnect seconds.
    pub exchange_seconds: f64,
    /// `exchange_seconds / modeled_seconds`.
    pub exchange_fraction: f64,
    /// Edge-count load imbalance of the partition (1.0 = perfect).
    pub load_imbalance: f64,
    /// Iterations to convergence (identical across device counts).
    pub iterations: u32,
}

/// One dataset's row of the sweep.
pub struct ScalingRow {
    /// Dataset surrogate name.
    pub dataset: &'static str,
    /// Vertices in the scaled surrogate.
    pub vertices: u32,
    /// Edges in the scaled surrogate.
    pub edges: u32,
    /// One cell per entry of [`DEVICE_SWEEP`].
    pub cells: Vec<ScalingCell>,
}

/// The full sweep result: renders the report table and serializes to
/// `multi_gpu_scaling.json`.
pub struct ScalingResult {
    /// Scale divisor the surrogates were generated at.
    pub scale: u64,
    /// Interconnect preset name used for every exchange.
    pub interconnect: String,
    /// One row per dataset surrogate.
    pub rows: Vec<ScalingRow>,
    /// Every run's full stats (per-device breakdown included), recorded
    /// under `dataset`/`devices` labels for `multi_gpu_scaling_metrics.json`.
    pub metrics: MetricsRegistry,
}

/// Runs PageRank (the all-active benchmark: every vertex updates every
/// iteration, so halo traffic is maximal) on the CW engine over each
/// surrogate for every device count.
pub fn run(ctx: &Ctx) -> ScalingResult {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    for ds in Dataset::ALL {
        let g = ds.generate(ctx.scale);
        if ctx.verbose {
            log::write(
                Level::Info,
                &format!(
                    "multi_gpu_scaling: {} ({} vertices, {} edges)",
                    ds.name(),
                    g.num_vertices(),
                    g.num_edges()
                ),
            );
        }
        let mut base = CuShaConfig::cw();
        base.max_iterations = ctx.max_iterations;
        let mut cells: Vec<ScalingCell> = Vec::new();
        let mut baseline_values = None;
        let mut baseline_seconds = 0.0;
        for devices in DEVICE_SWEEP {
            let out = run_multi(
                &PageRank::new(),
                &g,
                &MultiConfig::new(base.clone(), devices),
            );
            let s = &out.stats;
            let modeled = s.modeled_seconds();
            let devices_label = devices.to_string();
            s.record_metrics(
                &mut metrics,
                &[("dataset", ds.name()), ("devices", &devices_label)],
            );
            match &baseline_values {
                None => {
                    baseline_values = Some(out.values);
                    baseline_seconds = modeled;
                }
                Some(v) => assert_eq!(
                    v,
                    &out.values,
                    "{}: {} devices diverged from single-device output",
                    ds.name(),
                    devices
                ),
            }
            cells.push(ScalingCell {
                devices,
                modeled_seconds: modeled,
                speedup: baseline_seconds / modeled,
                exchange_bytes: s.exchange_bytes,
                exchange_seconds: s.exchange_seconds,
                exchange_fraction: s.exchange_seconds / modeled,
                load_imbalance: s.load_imbalance,
                iterations: s.iterations,
            });
        }
        rows.push(ScalingRow {
            dataset: ds.name(),
            vertices: g.num_vertices(),
            edges: g.num_edges(),
            cells,
        });
    }
    ScalingResult {
        scale: ctx.scale,
        interconnect: cusha_simt::Interconnect::pcie_gen3().name.to_string(),
        rows,
        metrics,
    }
}

impl ScalingResult {
    /// Paper-style report table.
    pub fn report(&self) -> String {
        let mut t = Table::new(format!(
            "Multi-GPU scaling: CW PageRank over a {} fleet (scale 1/{}; \
             speedup vs 1 device, exchange share of modeled time)",
            self.interconnect, self.scale
        ))
        .header([
            "Graph".to_string(),
            "1 dev".to_string(),
            "2 dev".to_string(),
            "4 dev".to_string(),
            "8 dev".to_string(),
            "exch% @8".to_string(),
            "imbal @8".to_string(),
        ]);
        for row in &self.rows {
            let cell = |c: &ScalingCell| {
                format!(
                    "{} ({})",
                    fmt_ms(c.modeled_seconds * 1e3),
                    fmt_speedup(c.speedup)
                )
            };
            let last = row.cells.last().expect("sweep is never empty");
            t.row([
                row.dataset.to_string(),
                cell(&row.cells[0]),
                cell(&row.cells[1]),
                cell(&row.cells[2]),
                cell(&row.cells[3]),
                fmt_pct(last.exchange_fraction),
                format!("{:.3}", last.load_imbalance),
            ]);
        }
        t.render()
    }

    /// Hand-rolled JSON for `results/multi_gpu_scaling.json` (the workspace
    /// takes no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"experiment\": \"multi_gpu_scaling\",\n");
        s.push_str("  \"engine\": \"CuSha-CW\",\n");
        s.push_str("  \"benchmark\": \"PageRank\",\n");
        s.push_str(&format!("  \"interconnect\": \"{}\",\n", self.interconnect));
        s.push_str(&format!("  \"scale_divisor\": {},\n", self.scale));
        s.push_str("  \"datasets\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", row.dataset));
            s.push_str(&format!("      \"vertices\": {},\n", row.vertices));
            s.push_str(&format!("      \"edges\": {},\n", row.edges));
            s.push_str("      \"sweep\": [\n");
            for (j, c) in row.cells.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"devices\": {}, \"modeled_seconds\": {:.9}, \
                     \"speedup\": {:.4}, \"exchange_bytes\": {}, \
                     \"exchange_seconds\": {:.9}, \"exchange_fraction\": {:.6}, \
                     \"load_imbalance\": {:.4}, \"iterations\": {}}}{}\n",
                    c.devices,
                    c.modeled_seconds,
                    c.speedup,
                    c.exchange_bytes,
                    c.exchange_seconds,
                    c.exchange_fraction,
                    c.load_imbalance,
                    c.iterations,
                    if j + 1 < row.cells.len() { "," } else { "" },
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Byte-stable metrics snapshot (`cusha-metrics/v2`) of every run in
    /// the sweep, written next to `multi_gpu_scaling.json` by `repro`.
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_and_serializes() {
        // One small dataset at a deep scale keeps this a fast smoke test.
        let ctx = Ctx {
            scale: 4096,
            rmat_scale: 4096,
            max_iterations: 50,
            verbose: false,
            jobs: 0,
        };
        let res = run(&ctx);
        assert_eq!(res.rows.len(), Dataset::ALL.len());
        for row in &res.rows {
            assert_eq!(row.cells.len(), DEVICE_SWEEP.len());
            assert!((row.cells[0].speedup - 1.0).abs() < 1e-12);
            assert_eq!(row.cells[0].exchange_bytes, 0);
        }
        let json = res.to_json();
        assert!(json.contains("\"experiment\": \"multi_gpu_scaling\""));
        assert!(json.contains("\"devices\": 8"));
        // Crude structural check: balanced braces and brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let report = res.report();
        assert!(report.contains("Multi-GPU scaling"));
        let metrics = res.metrics_json();
        assert!(metrics.starts_with("{\"schema\":\"cusha-metrics/v2\""));
        assert!(metrics.contains("multi_devices{dataset=LiveJournal,devices=8}"));
        assert!(metrics.contains("device_kernel_seconds{"));
    }
}
