//! One module per paper artifact (see DESIGN.md's per-experiment index).
//!
//! Each module exposes `run(..) -> String` producing the paper-formatted
//! report; the `repro` binary prints them. Artifacts that derive from the
//! shared result matrix take `&MatrixResult`; the purely structural ones
//! (Table 1, Figures 1, 9, 11) take a [`Ctx`].

pub mod ablation;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod frontier_matrix;
pub mod layouts;
pub mod multi_gpu_scaling;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

/// Common experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Ctx {
    /// Scale divisor for the Table-1 dataset surrogates.
    pub scale: u64,
    /// Scale divisor for the Section-5.2 RMAT sweep graphs.
    pub rmat_scale: u64,
    /// Convergence-loop cap (bounds the tolerance-driven benchmarks).
    pub max_iterations: u32,
    /// Stream per-cell progress to stderr.
    pub verbose: bool,
    /// Host worker threads for simulator cells and fleet devices (`0` =
    /// auto: `CUSHA_JOBS`, then available parallelism). Never changes a
    /// result — only the host wall clock.
    pub jobs: usize,
}

impl Default for Ctx {
    /// Default scales keep per-iteration kernel work well above the fixed
    /// per-iteration launch/readback latency (where the paper's regime
    /// lives) while finishing a full `repro all` in tens of minutes.
    fn default() -> Self {
        Ctx {
            scale: 64,
            rmat_scale: 64,
            max_iterations: 300,
            verbose: false,
            jobs: 0,
        }
    }
}

/// The paper's RMAT sensitivity graphs: `(name, edges, vertices)` at full
/// scale ("a `i_j` graph has around `i` million edges and `j` million
/// vertices", Section 5.2).
pub const RMAT_SWEEP: [(&str, u64, u64); 9] = [
    ("16_2", 16_000_000, 2_000_000),
    ("16_4", 16_000_000, 4_000_000),
    ("16_8", 16_000_000, 8_000_000),
    ("67_4", 67_000_000, 4_000_000),
    ("67_8", 67_000_000, 8_000_000),
    ("67_16", 67_000_000, 16_000_000),
    ("134_8", 134_000_000, 8_000_000),
    ("134_16", 134_000_000, 16_000_000),
    ("134_32", 134_000_000, 32_000_000),
];

/// Generates one RMAT sweep graph at `1/scale` of its full size.
pub fn rmat_sweep_graph(edges: u64, vertices: u64, scale: u64) -> cusha_graph::Graph {
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    let target_v = (vertices / scale).max(4);
    let log2 = (target_v as f64).log2().round().max(2.0) as u32;
    let n = 1u64 << log2;
    let e = (n as f64 * (edges as f64 / vertices as f64)) as u64;
    rmat(&RmatConfig::graph500(log2, e, 0x5EED ^ edges ^ vertices))
}

/// Scales a full-size `|N|` for a graph shrunk by `scale`: window size is
/// `|E||N|²/|V|²`, so preserving it under `|E|,|V| -> /scale` requires
/// `|N| -> /sqrt(scale)`.
pub fn scaled_n(n_full: u32, scale: u64) -> u32 {
    ((n_full as f64 / (scale as f64).sqrt()).round() as u32).max(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_graph_preserves_sparsity() {
        let g = rmat_sweep_graph(67_000_000, 8_000_000, 4096);
        let ratio = g.avg_degree();
        assert!(
            (ratio - 67.0 / 8.0).abs() / (67.0 / 8.0) < 0.2,
            "ratio {ratio}"
        );
    }

    #[test]
    fn scaled_n_preserves_window_size() {
        use cusha_core::windows::expected_window_size;
        let full = expected_window_size(67_000_000, 8_000_000, 3072);
        let scale = 256;
        let scaled =
            expected_window_size(67_000_000 / scale, 8_000_000 / scale, scaled_n(3072, scale));
        assert!((full - scaled).abs() / full < 0.1, "{full} vs {scaled}");
    }

    #[test]
    fn scaled_n_floors_at_warp() {
        assert_eq!(scaled_n(64, 1 << 20), 32);
    }
}
