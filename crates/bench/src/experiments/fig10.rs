//! Figure 10: time breakdown on LiveJournal — host-to-device copy, GPU
//! execution, and device-to-host copy — for CuSha-CW, CuSha-GS, and the
//! best VWC-CSR configuration, per benchmark.

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::{CellResult, MatrixResult};
use crate::table::{fmt_ms, Table};
use cusha_graph::surrogates::Dataset;

fn row_of(cell: &CellResult, label: &str, b: Benchmark, first: bool) -> [String; 6] {
    let s = &cell.stats;
    [
        if first {
            b.name().to_string()
        } else {
            String::new()
        },
        label.to_string(),
        fmt_ms(s.h2d_seconds * 1e3),
        fmt_ms(s.compute_seconds * 1e3),
        fmt_ms(s.d2h_seconds * 1e3),
        fmt_ms(s.total_ms()),
    ]
}

/// Renders Figure 10 from the shared result matrix.
pub fn run(matrix: &MatrixResult) -> String {
    let ds = Dataset::LiveJournal;
    let mut t = Table::new(format!(
        "Figure 10: time breakdown on LiveJournal, ms (scale 1/{})",
        matrix.scale
    ))
    .header([
        "Benchmark",
        "Engine",
        "H2D copy",
        "GPU exec",
        "D2H copy",
        "Total",
    ]);
    for b in Benchmark::ALL {
        let mut first = true;
        for (label, cell) in [
            ("CuSha-CW", matrix.get(ds, b, Engine::CuShaCw)),
            ("CuSha-GS", matrix.get(ds, b, Engine::CuShaGs)),
            ("best VWC-CSR", matrix.best_vwc(ds, b)),
        ] {
            if let Some(cell) = cell {
                t.row(row_of(cell, label, b, first));
                first = false;
            }
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;

    #[test]
    fn breakdown_components_sum_to_total() {
        let m = run_matrix(
            &[Dataset::LiveJournal],
            &[Benchmark::Bfs],
            &[Engine::CuShaCw, Engine::Vwc(8)],
            8192,
            300,
            false,
        );
        let cell = m
            .get(Dataset::LiveJournal, Benchmark::Bfs, Engine::CuShaCw)
            .unwrap();
        let s = &cell.stats;
        assert!(
            ((s.h2d_seconds + s.compute_seconds + s.d2h_seconds) - s.total_seconds()).abs() < 1e-12
        );
        // CuSha's H2D is heavier than VWC's (bigger representation).
        let vwc = m
            .get(Dataset::LiveJournal, Benchmark::Bfs, Engine::Vwc(8))
            .unwrap();
        assert!(s.h2d_seconds > vwc.stats.h2d_seconds);
        let rendered = run(&m);
        assert!(rendered.contains("H2D copy"));
    }
}
