//! Figures 2–4 (illustrative): renders the CSR, G-Shards and Concatenated
//! Windows layouts of a small example graph directly from the real data
//! structures — the visual counterpart of the paper's representation
//! diagrams, and a handy debugging view.

use crate::table::Table;
use cusha_core::{ConcatWindows, GShards};
use cusha_graph::{Csr, Edge, Graph};

/// An 8-vertex example in the spirit of the paper's Figure 2(a).
pub fn example_graph() -> Graph {
    Graph::new(
        8,
        vec![
            Edge::new(1, 2, 10),
            Edge::new(7, 2, 11),
            Edge::new(0, 1, 12),
            Edge::new(3, 0, 13),
            Edge::new(5, 4, 14),
            Edge::new(6, 4, 15),
            Edge::new(2, 7, 16),
            Edge::new(4, 7, 17),
            Edge::new(0, 5, 18),
            Edge::new(6, 1, 19),
        ],
    )
}

/// Renders all three representation layouts.
pub fn run() -> String {
    let g = example_graph();
    let mut out = String::new();

    // --- Figure 2(b): CSR. -------------------------------------------------
    let csr = Csr::from_graph(&g);
    let mut t = Table::new("Figure 2(b): CSR layout of the example graph").header([
        "vertex",
        "InEdgeIdxs",
        "incoming SrcIndxs",
        "EdgeValues",
    ]);
    for v in 0..g.num_vertices() {
        let r = csr.in_range(v);
        t.row([
            v.to_string(),
            format!("{}..{}", r.start, r.end),
            format!("{:?}", &csr.src_indxs()[r.clone()]),
            format!("{:?}", &csr.weights()[r]),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- Figure 3(a): G-Shards. ---------------------------------------------
    let gs = GShards::from_graph(&g, 4);
    let mut t = Table::new("Figure 3(a): G-Shards layout (|N| = 4)").header([
        "shard",
        "entry",
        "SrcIndex",
        "DestIndex",
        "EdgeValue",
        "window",
    ]);
    for s in 0..gs.num_shards() {
        for k in gs.shard_entries(s) {
            let window = (0..gs.num_shards())
                .find(|&i| gs.window(i, s).contains(&k))
                .unwrap();
            t.row([
                if k == gs.shard_entries(s).start {
                    format!("shard {s} (dst {:?})", gs.vertex_range(s))
                } else {
                    String::new()
                },
                k.to_string(),
                gs.src_index()[k].to_string(),
                gs.dest_index()[k].to_string(),
                g.edge(gs.edge_id()[k]).weight.to_string(),
                format!("W_{window}{s}"),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- Figure 4(c): Concatenated Windows. ----------------------------------
    let cw = ConcatWindows::from_gshards(&gs);
    let mut t = Table::new("Figure 4(c): Concatenated Windows layout").header([
        "CW",
        "entry",
        "SrcIndex",
        "Mapper (shard position)",
    ]);
    for s in 0..gs.num_shards() {
        for k in cw.cw_entries(s) {
            t.row([
                if k == cw.cw_entries(s).start {
                    format!("CW_{s}")
                } else {
                    String::new()
                },
                k.to_string(),
                cw.src_index()[k].to_string(),
                cw.mapper()[k].to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_render_consistently() {
        let s = run();
        assert!(s.contains("Figure 2(b)"));
        assert!(s.contains("Figure 3(a)"));
        assert!(s.contains("Figure 4(c)"));
        assert!(s.contains("W_01") || s.contains("W_11"));
        assert!(s.contains("CW_0") && s.contains("CW_1"));
    }

    #[test]
    fn example_graph_matches_figure_discussion() {
        // Vertex 2's in-neighbourhood is {1, 7} as in the paper's text.
        let g = example_graph();
        let csr = Csr::from_graph(&g);
        let nbrs: Vec<u32> = csr.in_neighbors(2).map(|(s, _)| s).collect();
        assert_eq!(nbrs, vec![1, 7]);
    }
}
