//! Figure 12: CuSha running time with G-Shards vs Concatenated Windows on
//! the RMAT sweep, across shard sizes — normalized to the fastest
//! configuration, SSSP benchmark.
//!
//! Demonstrates G-Shards' sensitivity to graph size, sparsity and `|N|`
//! (Section 5.2): CW stays flat where GS degrades on large sparse graphs
//! with small windows.

use crate::bench_defs::default_source;
use crate::experiments::{rmat_sweep_graph, scaled_n, Ctx, RMAT_SWEEP};
use crate::table::Table;
use cusha_algos::Sssp;
use cusha_core::{run as run_cusha, CuShaConfig, Repr};

/// `(graph, |N| full-scale, GS ms, CW ms)` for every sweep point.
pub fn sweep(ctx: &Ctx) -> Vec<(String, u32, f64, f64)> {
    let mut rows = Vec::new();
    for (name, e, v) in RMAT_SWEEP {
        let g = rmat_sweep_graph(e, v, ctx.rmat_scale);
        let prog = Sssp::new(default_source(&g));
        for n_full in [1024u32, 2048, 3072] {
            let n = scaled_n(n_full, ctx.rmat_scale);
            let mut ms = [0.0f64; 2];
            for (i, repr) in [Repr::GShards, Repr::ConcatWindows].into_iter().enumerate() {
                let mut cfg = CuShaConfig::new(repr).with_vertices_per_shard(n);
                cfg.max_iterations = ctx.max_iterations;
                ms[i] = run_cusha(&prog, &g, &cfg).stats.total_ms();
            }
            rows.push((name.to_string(), n_full, ms[0], ms[1]));
        }
    }
    rows
}

/// Renders Figure 12.
pub fn run(ctx: &Ctx) -> String {
    let rows = sweep(ctx);
    let best = rows
        .iter()
        .flat_map(|r| [r.2, r.3])
        .fold(f64::INFINITY, f64::min);
    let mut t = Table::new(format!(
        "Figure 12: SSSP time normalized to fastest, GS vs CW (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header([
        "Graph",
        "|N| (full-scale)",
        "GS (norm)",
        "CW (norm)",
        "GS/CW",
    ]);
    for (name, n_full, gs_ms, cw_ms) in rows {
        t.row([
            name,
            n_full.to_string(),
            format!("{:.2}", gs_ms / best),
            format!("{:.2}", cw_ms / best),
            format!("{:.2}", gs_ms / cw_ms),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cw_beats_gs_on_the_sparsest_small_n_point() {
        // The paper's headline sensitivity claim: with small |N| on a large
        // sparse graph, GS degrades while CW holds up. The effect needs a
        // graph big enough that stage-4 work dominates launch overhead.
        let ctx = Ctx {
            rmat_scale: 1024,
            max_iterations: 100,
            ..Default::default()
        };
        let g = rmat_sweep_graph(67_000_000, 16_000_000, ctx.rmat_scale);
        let prog = Sssp::new(default_source(&g));
        let n = scaled_n(1024, ctx.rmat_scale);
        let gs = {
            let cfg = CuShaConfig::new(Repr::GShards).with_vertices_per_shard(n);
            run_cusha(&prog, &g, &cfg).stats.total_ms()
        };
        let cw = {
            let cfg = CuShaConfig::new(Repr::ConcatWindows).with_vertices_per_shard(n);
            run_cusha(&prog, &g, &cfg).stats.total_ms()
        };
        assert!(
            cw < gs,
            "CW ({cw:.2} ms) should beat GS ({gs:.2} ms) on sparse graphs with small |N|"
        );
    }
}
