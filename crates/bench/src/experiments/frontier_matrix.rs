//! Frontier-vs-shard head-to-head over the dataset surrogates.
//!
//! The frontier engine only touches active edges, so its modeled time
//! scales with total frontier work; the shard engines sweep every shard
//! every iteration. On the scale-free surrogates (small diameter, a few
//! mostly-dense iterations) the shard engines' coalesced sweeps win; on
//! the road-network surrogate (uniform degree, huge diameter, thousands
//! of needle-thin frontiers) the winner flips to the frontier engine.
//! This artifact records that flip as data: the four frontier-expressible
//! traversals × every Table-1 surrogate × {GS, CW, Frontier}, with the
//! per-cell winner and the road-network flip summarized in
//! `results/frontier_matrix.json`.

use crate::bench_defs::{Benchmark, Engine};
use crate::experiments::Ctx;
use crate::matrix::{run_matrix_jobs, MatrixResult};
use crate::table::{fmt_ms, Table};
use cusha_graph::surrogates::Dataset;

/// The traversals both engine families express exactly (bit-identical
/// outputs, so the comparison is pure timing).
pub const TRAVERSALS: [Benchmark; 4] = [
    Benchmark::Bfs,
    Benchmark::Sssp,
    Benchmark::Cc,
    Benchmark::Sswp,
];

/// Default head-to-head engine list (overridable via `--engines`).
pub const DEFAULT_ENGINES: [Engine; 3] = [Engine::CuShaGs, Engine::CuShaCw, Engine::Frontier];

/// One (dataset, benchmark) comparison row.
#[derive(Clone, Debug)]
pub struct FlipRow {
    /// Input surrogate.
    pub dataset: Dataset,
    /// Traversal benchmark.
    pub benchmark: Benchmark,
    /// `(engine label, total ms, iterations, converged)` per engine.
    pub cells: Vec<(String, f64, u32, bool)>,
    /// Label of the fastest engine.
    pub winner: String,
}

/// The full head-to-head result.
pub struct FrontierMatrixResult {
    /// Scale divisor the surrogates were generated at.
    pub scale: u64,
    /// Iteration cap used (high enough that every traversal converges,
    /// including on the huge-diameter road network).
    pub max_iterations: u32,
    /// One row per (dataset, traversal).
    pub rows: Vec<FlipRow>,
    /// Whether the road-network surrogate's winner differs from the winner
    /// on every scale-free surrogate for the same benchmark, for at least
    /// one benchmark — the headline claim.
    pub road_network_winner_flips: bool,
}

/// Traversals need to reach the fixpoint for the timing comparison to be
/// fair; the road-network surrogate's diameter dwarfs the default matrix
/// cap, so this experiment enforces its own floor.
fn iteration_cap(ctx: &Ctx) -> u32 {
    ctx.max_iterations.max(10_000)
}

/// Runs the head-to-head on `engines` (falling back to
/// [`DEFAULT_ENGINES`] when empty).
pub fn run_with_engines(ctx: &Ctx, engines: &[Engine]) -> FrontierMatrixResult {
    let engines = if engines.is_empty() {
        &DEFAULT_ENGINES[..]
    } else {
        engines
    };
    let cap = iteration_cap(ctx);
    let m: MatrixResult = run_matrix_jobs(
        &Dataset::ALL,
        &TRAVERSALS,
        engines,
        ctx.scale,
        cap,
        ctx.verbose,
        ctx.jobs,
    );
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        for b in TRAVERSALS {
            let cells: Vec<(String, f64, u32, bool)> = engines
                .iter()
                .filter_map(|&e| m.get(ds, b, e))
                .map(|c| {
                    (
                        c.engine.label(),
                        c.stats.total_ms(),
                        c.stats.iterations,
                        c.stats.converged,
                    )
                })
                .collect();
            let winner = cells
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|c| c.0.clone())
                .expect("at least one engine per cell");
            rows.push(FlipRow {
                dataset: ds,
                benchmark: b,
                cells,
                winner,
            });
        }
    }
    let road_network_winner_flips = TRAVERSALS.iter().any(|&b| {
        let winner_of = |ds: Dataset| {
            rows.iter()
                .find(|r| r.dataset == ds && r.benchmark == b)
                .map(|r| r.winner.clone())
        };
        let Some(road) = winner_of(Dataset::RoadNetCA) else {
            return false;
        };
        Dataset::ALL
            .iter()
            .filter(|&&ds| ds != Dataset::RoadNetCA)
            .all(|&ds| winner_of(ds).is_some_and(|w| w != road))
    });
    FrontierMatrixResult {
        scale: ctx.scale,
        max_iterations: cap,
        rows,
        road_network_winner_flips,
    }
}

/// Runs the head-to-head with the default engine list.
pub fn run(ctx: &Ctx) -> FrontierMatrixResult {
    run_with_engines(ctx, &[])
}

impl FrontierMatrixResult {
    /// Paper-style report table: one row per (dataset, traversal), one
    /// column per engine, winner flagged.
    pub fn report(&self) -> String {
        let engine_labels: Vec<String> = self
            .rows
            .first()
            .map(|r| r.cells.iter().map(|c| c.0.clone()).collect())
            .unwrap_or_default();
        let mut header = vec!["Graph".to_string(), "Bench".to_string()];
        header.extend(engine_labels.iter().cloned());
        header.push("Winner".to_string());
        let mut t = Table::new(format!(
            "Frontier vs shard engines (scale 1/{}, total modeled ms; \
             road-network winner flip: {})",
            self.scale, self.road_network_winner_flips
        ))
        .header(header);
        for row in &self.rows {
            let mut cols = vec![row.dataset.to_string(), row.benchmark.to_string()];
            for (_, ms, iters, converged) in &row.cells {
                let mark = if *converged { "" } else { "*" };
                cols.push(format!("{}{mark} ({iters} it)", fmt_ms(*ms)));
            }
            cols.push(row.winner.clone());
            t.row(cols);
        }
        t.render()
    }

    /// Hand-rolled JSON for `results/frontier_matrix.json` (the workspace
    /// takes no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"experiment\": \"frontier_matrix\",\n");
        s.push_str(&format!("  \"scale_divisor\": {},\n", self.scale));
        s.push_str(&format!("  \"max_iterations\": {},\n", self.max_iterations));
        s.push_str(&format!(
            "  \"road_network_winner_flips\": {},\n",
            self.road_network_winner_flips
        ));
        s.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"benchmark\": \"{}\", \"winner\": \"{}\", \
                 \"engines\": [",
                row.dataset, row.benchmark, row.winner
            ));
            for (j, (label, ms, iters, converged)) in row.cells.iter().enumerate() {
                s.push_str(&format!(
                    "{{\"engine\": \"{label}\", \"total_ms\": {ms:.6}, \
                     \"iterations\": {iters}, \"converged\": {converged}}}{}",
                    if j + 1 < row.cells.len() { ", " } else { "" },
                ));
            }
            s.push_str(&format!(
                "]}}{}\n",
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_to_head_reports_and_serializes() {
        let ctx = Ctx {
            scale: 4096,
            rmat_scale: 4096,
            max_iterations: 300,
            verbose: false,
            jobs: 0,
        };
        let res = run(&ctx);
        assert_eq!(res.rows.len(), Dataset::ALL.len() * TRAVERSALS.len());
        for row in &res.rows {
            assert_eq!(row.cells.len(), DEFAULT_ENGINES.len());
            assert!(row.cells.iter().all(|c| c.3), "{row:?} did not converge",);
            assert!(row.cells.iter().any(|c| c.0 == row.winner));
        }
        let json = res.to_json();
        assert!(json.contains("\"experiment\": \"frontier_matrix\""));
        assert!(json.contains("\"road_network_winner_flips\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(res.report().contains("Frontier vs shard"));
    }

    #[test]
    fn engines_filter_narrows_the_comparison() {
        let ctx = Ctx {
            scale: 8192,
            rmat_scale: 8192,
            max_iterations: 300,
            verbose: false,
            jobs: 0,
        };
        let res = run_with_engines(&ctx, &[Engine::CuShaGs, Engine::Frontier]);
        assert!(res.rows.iter().all(|r| r.cells.len() == 2));
    }
}
