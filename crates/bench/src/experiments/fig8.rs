//! Figure 8: average profiled efficiencies (global store, global load,
//! warp execution) of best-VWC-CSR vs CuSha-GS vs CuSha-CW on LiveJournal.

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::MatrixResult;
use crate::table::{fmt_pct, Table};
use cusha_graph::surrogates::Dataset;

struct Avg {
    gst: f64,
    gld: f64,
    warp: f64,
    n: usize,
}

fn average(matrix: &MatrixResult, pick: impl Fn(Benchmark) -> Option<Engine>) -> Option<Avg> {
    let mut acc = Avg {
        gst: 0.0,
        gld: 0.0,
        warp: 0.0,
        n: 0,
    };
    for b in Benchmark::ALL {
        let Some(engine) = pick(b) else { continue };
        let Some(cell) = matrix.get(Dataset::LiveJournal, b, engine) else {
            continue;
        };
        acc.gst += cell.stats.kernel.gst_efficiency();
        acc.gld += cell.stats.kernel.gld_efficiency();
        acc.warp += cell.stats.kernel.warp_execution_efficiency();
        acc.n += 1;
    }
    (acc.n > 0).then_some(Avg {
        gst: acc.gst / acc.n as f64,
        gld: acc.gld / acc.n as f64,
        warp: acc.warp / acc.n as f64,
        n: acc.n,
    })
}

/// Engine-picking closure per benchmark (best-VWC is benchmark-dependent).
type EnginePick<'a> = Box<dyn Fn(Benchmark) -> Option<Engine> + 'a>;

/// Renders Figure 8 from the shared result matrix.
pub fn run(matrix: &MatrixResult) -> String {
    let mut t = Table::new(format!(
        "Figure 8: average profiled efficiencies on LiveJournal (scale 1/{})",
        matrix.scale
    ))
    .header([
        "Engine",
        "Global store eff",
        "Global load eff",
        "Warp exec eff",
        "benchmarks",
    ]);
    let rows: [(&str, EnginePick<'_>); 3] = [
        (
            "Best VWC-CSR",
            Box::new(|b| matrix.best_vwc(Dataset::LiveJournal, b).map(|c| c.engine)),
        ),
        ("CuSha-GS", Box::new(|_| Some(Engine::CuShaGs))),
        ("CuSha-CW", Box::new(|_| Some(Engine::CuShaCw))),
    ];
    for (label, pick) in rows {
        if let Some(a) = average(matrix, pick) {
            t.row([
                label.to_string(),
                fmt_pct(a.gst),
                fmt_pct(a.gld),
                fmt_pct(a.warp),
                a.n.to_string(),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_matrix;

    #[test]
    fn efficiencies_render_for_present_engines() {
        let m = run_matrix(
            &[Dataset::LiveJournal],
            &[Benchmark::Bfs],
            &[Engine::CuShaGs, Engine::CuShaCw, Engine::Vwc(8)],
            8192,
            300,
            false,
        );
        let s = run(&m);
        assert!(s.contains("CuSha-GS"));
        assert!(s.contains("Best VWC-CSR"));
        assert!(s.contains('%'));
    }
}
