//! Figure 13: CuSha-CW speedup over VWC-CSR with virtual warp sizes 2, 4,
//! 8, 16 and 32, on the RMAT sweep graphs (SSSP, `|N| = 3k` full-scale).

use crate::bench_defs::default_source;
use crate::experiments::{rmat_sweep_graph, scaled_n, Ctx, RMAT_SWEEP};
use crate::table::{fmt_speedup, Table};
use cusha_algos::Sssp;
use cusha_baselines::{run_vwc, VwcConfig, VIRTUAL_WARP_SIZES};
use cusha_core::{run as run_cusha, CuShaConfig, Repr};

/// `(graph_name, cw_ms, [vwc_ms by warp size])` for every sweep graph.
pub fn sweep(ctx: &Ctx) -> Vec<(String, f64, Vec<f64>)> {
    let mut rows = Vec::new();
    for (name, e, v) in RMAT_SWEEP {
        let g = rmat_sweep_graph(e, v, ctx.rmat_scale);
        let prog = Sssp::new(default_source(&g));
        let n = scaled_n(3072, ctx.rmat_scale);
        let cw_ms = {
            let mut cfg = CuShaConfig::new(Repr::ConcatWindows).with_vertices_per_shard(n);
            cfg.max_iterations = ctx.max_iterations;
            run_cusha(&prog, &g, &cfg).stats.total_ms()
        };
        let vwc_ms: Vec<f64> = VIRTUAL_WARP_SIZES
            .iter()
            .map(|&vw| {
                let mut cfg = VwcConfig::new(vw);
                cfg.max_iterations = ctx.max_iterations;
                run_vwc(&prog, &g, &cfg).stats.total_ms()
            })
            .collect();
        rows.push((name.to_string(), cw_ms, vwc_ms));
    }
    rows
}

/// Renders Figure 13.
pub fn run(ctx: &Ctx) -> String {
    let mut t = Table::new(format!(
        "Figure 13: CW speedup over VWC-CSR per virtual warp size, SSSP (rmat scale 1/{})",
        ctx.rmat_scale
    ))
    .header(
        std::iter::once("Graph".to_string())
            .chain(VIRTUAL_WARP_SIZES.iter().map(|vw| format!("vs VWC/{vw}"))),
    );
    for (name, cw_ms, vwc_ms) in sweep(ctx) {
        let mut row = vec![name];
        row.extend(vwc_ms.iter().map(|&ms| fmt_speedup(ms / cw_ms)));
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_baselines::VwcConfig;

    #[test]
    fn cw_beats_every_vwc_config_on_a_sweep_graph() {
        // Needs a graph large enough that per-iteration memory traffic
        // dominates the fixed per-iteration launch/readback latency.
        let ctx = Ctx {
            rmat_scale: 256,
            max_iterations: 100,
            ..Default::default()
        };
        let g = rmat_sweep_graph(67_000_000, 8_000_000, ctx.rmat_scale);
        let prog = Sssp::new(default_source(&g));
        let n = scaled_n(3072, ctx.rmat_scale);
        let cw = {
            let cfg = CuShaConfig::new(Repr::ConcatWindows).with_vertices_per_shard(n);
            run_cusha(&prog, &g, &cfg).stats.total_ms()
        };
        for vw in [2usize, 32] {
            let vwc = run_vwc(&prog, &g, &VwcConfig::new(vw)).stats.total_ms();
            assert!(
                cw < vwc,
                "CW ({cw:.2} ms) should beat VWC/{vw} ({vwc:.2} ms)"
            );
        }
    }
}
