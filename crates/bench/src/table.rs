//! Minimal ASCII table formatter for paper-style reports.

/// Column-aligned ASCII table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Sets the header row.
    pub fn header(mut self, cols: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row(&mut self, cols: impl IntoIterator<Item = impl Into<String>>) -> &mut Self {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push_str(&format!(
                "{}\n",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1)))
            ));
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats milliseconds with adaptive precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// Formats a ratio as the paper does ("2.72x").
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo").header(["graph", "ms"]);
        t.row(["LiveJournal", "166"]);
        t.row(["Pokec", "70"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric column: both rows end at the same offset.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(0.1234), "0.123");
        assert_eq!(fmt_speedup(7.214), "7.21x");
        assert_eq!(fmt_pct(0.345), "34.5%");
    }

    #[test]
    fn empty_table_is_harmless() {
        let t = Table::new("empty");
        assert!(t.render().contains("empty"));
    }
}
