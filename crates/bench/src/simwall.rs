//! `BENCH_simwall.json` — host wall-clock of the simulation itself.
//!
//! Every other artifact in this repo reports *modeled* device time, which is
//! deterministic and independent of the host. This harness instead measures
//! how long the host takes to produce those numbers: a fixed matrix subset
//! is run twice — once on one worker thread, once on `jobs` workers — the
//! two results are verified byte-identical, and the wall-clock ratio is the
//! honest host-parallel speedup on the machine at hand (recorded alongside
//! its CPU count; a single-core host will honestly report ~1x).

use crate::bench_defs::{Benchmark, Engine};
use crate::matrix::{run_cell, run_matrix_jobs, MatrixResult};
use cusha_graph::surrogates::Dataset;
use std::time::Instant;

/// The fixed subset timed by the harness: small enough to finish in seconds
/// at the default scale, wide enough that the parallel runner has real work
/// to overlap.
const DATASETS: [Dataset; 2] = [Dataset::Amazon0312, Dataset::WebGoogle];
const BENCHMARKS: [Benchmark; 2] = [Benchmark::Bfs, Benchmark::Sssp];
const ENGINES: [Engine; 3] = [Engine::CuShaGs, Engine::CuShaCw, Engine::Vwc(32)];

/// Timing of one matrix cell in the sequential pass.
pub struct CellWall {
    /// Input graph.
    pub dataset: Dataset,
    /// Benchmark run.
    pub benchmark: Benchmark,
    /// Engine used.
    pub engine: Engine,
    /// Host seconds the cell took, sequentially.
    pub seconds: f64,
}

/// Result of one simwall run.
pub struct SimwallResult {
    /// Per-cell host seconds of the sequential pass, in work-item order.
    pub cells: Vec<CellWall>,
    /// Total host seconds of the sequential (one-worker) pass.
    pub sequential_seconds: f64,
    /// Worker threads used by the parallel pass.
    pub jobs: usize,
    /// Total host seconds of the parallel pass.
    pub parallel_seconds: f64,
    /// Whether the two passes produced byte-identical matrix CSVs (they
    /// must; a `false` here is a determinism bug).
    pub outputs_identical: bool,
    /// Scale divisor the graphs were generated with.
    pub scale: u64,
    /// Convergence-loop cap.
    pub max_iterations: u32,
    /// CPUs the host reports available.
    pub host_cpus: usize,
    /// `git rev-parse HEAD` of the working tree, or `"unknown"`.
    pub git_rev: String,
}

impl SimwallResult {
    /// Sequential over parallel wall clock.
    pub fn speedup(&self) -> f64 {
        if self.parallel_seconds > 0.0 {
            self.sequential_seconds / self.parallel_seconds
        } else {
            0.0
        }
    }

    /// Whether the parallel pass asked for more workers than the host has
    /// CPUs. The numbers are still byte-correct, but the measured speedup
    /// reflects timeslicing, not parallel hardware.
    pub fn oversubscribed(&self) -> bool {
        self.host_cpus < self.jobs
    }

    /// The `cusha-simwall/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema\": \"cusha-simwall/v1\",\n");
        s.push_str(&format!("  \"git_rev\": \"{}\",\n", self.git_rev));
        s.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        s.push_str(&format!("  \"scale\": {},\n", self.scale));
        s.push_str(&format!("  \"max_iterations\": {},\n", self.max_iterations));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"dataset\": \"{}\", \"benchmark\": \"{}\", \"engine\": \"{}\", \
                 \"seconds\": {:.6}}}{}\n",
                c.dataset,
                c.benchmark,
                c.engine.label(),
                c.seconds,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"sequential\": {{\"jobs\": 1, \"total_seconds\": {:.6}}},\n",
            self.sequential_seconds
        ));
        s.push_str(&format!(
            "  \"parallel\": {{\"jobs\": {}, \"total_seconds\": {:.6}}},\n",
            self.jobs, self.parallel_seconds
        ));
        s.push_str(&format!("  \"speedup\": {:.4},\n", self.speedup()));
        s.push_str(&format!(
            "  \"oversubscribed\": {},\n",
            self.oversubscribed()
        ));
        s.push_str(&format!(
            "  \"outputs_identical\": {}\n",
            self.outputs_identical
        ));
        s.push_str("}\n");
        s
    }

    /// Human-readable report for stdout.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str("== Simulation wall clock (host seconds, not modeled time) ==\n");
        s.push_str(&format!(
            "host cpus {}, scale 1/{}, rev {}\n\n",
            self.host_cpus, self.scale, self.git_rev
        ));
        for c in &self.cells {
            s.push_str(&format!(
                "  {:<12} {:<5} {:<10} {:>9.3} s\n",
                c.dataset.to_string(),
                c.benchmark.to_string(),
                c.engine.label(),
                c.seconds
            ));
        }
        s.push_str(&format!(
            "\nsequential (1 job):  {:>9.3} s\nparallel  ({} jobs): {:>9.3} s\n\
             speedup: {:.2}x, outputs byte-identical: {}\n",
            self.sequential_seconds,
            self.jobs,
            self.parallel_seconds,
            self.speedup(),
            self.outputs_identical
        ));
        if self.oversubscribed() {
            s.push_str(&format!(
                "WARNING: {} workers on {} host CPU{} — the parallel pass is \
                 oversubscribed and its speedup reflects timeslicing, not \
                 parallel hardware\n",
                self.jobs,
                self.host_cpus,
                if self.host_cpus == 1 { "" } else { "s" }
            ));
        }
        s
    }
}

/// Runs the harness: a timed sequential pass (per-cell and total), a timed
/// parallel pass at `jobs` workers (`0` = auto), and a byte-compare of the
/// two matrices.
pub fn run(scale: u64, max_iterations: u32, jobs: usize) -> SimwallResult {
    let jobs = cusha_core::effective_jobs(jobs);

    // Sequential pass, timed per cell, over pre-generated graphs (graph
    // generation is shared setup, not simulation, so it stays untimed).
    let graphs: Vec<(Dataset, cusha_graph::Graph)> = DATASETS
        .iter()
        .map(|&ds| (ds, ds.generate(scale)))
        .collect();
    let mut cells = Vec::new();
    let mut seq_cells = Vec::new();
    let seq_start = Instant::now();
    for (ds, g) in &graphs {
        for &b in &BENCHMARKS {
            for &e in &ENGINES {
                let t = Instant::now();
                let cell = run_cell(g, *ds, b, e, max_iterations);
                cells.push(CellWall {
                    dataset: *ds,
                    benchmark: b,
                    engine: e,
                    seconds: t.elapsed().as_secs_f64(),
                });
                seq_cells.push(cell);
            }
        }
    }
    let sequential_seconds = seq_start.elapsed().as_secs_f64();
    let seq_csv = MatrixResult {
        cells: seq_cells,
        scale,
        graph_sizes: Vec::new(),
    }
    .to_csv();

    // Parallel pass over the same subset (regenerates the graphs — the
    // generators are deterministic — so both passes do identical work
    // apart from the threading).
    let par_start = Instant::now();
    let par = run_matrix_jobs(
        &DATASETS,
        &BENCHMARKS,
        &ENGINES,
        scale,
        max_iterations,
        false,
        jobs,
    );
    let parallel_seconds = par_start.elapsed().as_secs_f64();

    SimwallResult {
        cells,
        sequential_seconds,
        jobs,
        parallel_seconds,
        outputs_identical: par.to_csv() == seq_csv,
        scale,
        max_iterations,
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        git_rev: git_rev(),
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simwall_runs_and_serializes() {
        // Deep scale keeps this a smoke test; passes must still agree.
        let r = run(4096, 50, 2);
        assert_eq!(
            r.cells.len(),
            DATASETS.len() * BENCHMARKS.len() * ENGINES.len()
        );
        assert!(r.outputs_identical, "jobs=1 and jobs=2 matrices diverged");
        assert!(r.sequential_seconds > 0.0 && r.parallel_seconds > 0.0);
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"cusha-simwall/v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(r.report().contains("speedup"));
        // The oversubscription flag must agree between JSON and report.
        assert_eq!(r.oversubscribed(), r.host_cpus < r.jobs);
        assert!(json.contains(&format!("\"oversubscribed\": {}", r.oversubscribed())));
        assert_eq!(r.report().contains("WARNING"), r.oversubscribed());
    }
}
