//! Parallel experiment-matrix runner.
//!
//! Most artifacts (Tables 4–7, Figures 7, 8, 10) derive from the same
//! (dataset × benchmark × engine) result matrix; this module computes it
//! once. GPU-engine cells are simulator runs (deterministic, modeled time)
//! and execute concurrently across host threads; MTCPU cells measure real
//! wall-clock time and therefore run sequentially with the machine to
//! themselves.

use crate::bench_defs::{Benchmark, Engine};
use cusha_core::RunStats;
use cusha_graph::surrogates::Dataset;
use cusha_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One matrix cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Input graph.
    pub dataset: Dataset,
    /// Benchmark run.
    pub benchmark: Benchmark,
    /// Engine used.
    pub engine: Engine,
    /// Run statistics.
    pub stats: RunStats,
}

/// The full result matrix.
#[derive(Clone, Debug)]
pub struct MatrixResult {
    /// All computed cells.
    pub cells: Vec<CellResult>,
    /// The scale divisor the graphs were generated with.
    pub scale: u64,
    /// Per dataset: `(edges, vertices)` of the generated surrogate.
    pub graph_sizes: Vec<(Dataset, u64, u64)>,
}

impl MatrixResult {
    /// Finds one cell.
    pub fn get(&self, ds: Dataset, b: Benchmark, e: Engine) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.dataset == ds && c.benchmark == b && c.engine == e)
    }

    /// All cells for `(dataset, benchmark)` whose engine satisfies `pred`.
    pub fn select(
        &self,
        ds: Dataset,
        b: Benchmark,
        pred: impl Fn(Engine) -> bool,
    ) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.dataset == ds && c.benchmark == b && pred(c.engine))
            .collect()
    }

    /// `(min, max)` total ms across the VWC virtual-warp configurations.
    pub fn vwc_range_ms(&self, ds: Dataset, b: Benchmark) -> Option<(f64, f64)> {
        range_ms(&self.select(ds, b, |e| matches!(e, Engine::Vwc(_))))
    }

    /// `(min, max)` total ms across the MTCPU thread counts.
    pub fn mtcpu_range_ms(&self, ds: Dataset, b: Benchmark) -> Option<(f64, f64)> {
        range_ms(&self.select(ds, b, |e| matches!(e, Engine::Mtcpu(_))))
    }

    /// The best (fastest) VWC cell for `(dataset, benchmark)`.
    pub fn best_vwc(&self, ds: Dataset, b: Benchmark) -> Option<&CellResult> {
        self.select(ds, b, |e| matches!(e, Engine::Vwc(_)))
            .into_iter()
            .min_by(|a, b| a.stats.total_ms().total_cmp(&b.stats.total_ms()))
    }
}

impl MatrixResult {
    /// Serializes every cell as CSV (one row per engine run) for external
    /// analysis/plotting: dataset, benchmark, engine, times, iterations,
    /// convergence, and the three profiled efficiencies.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "dataset,benchmark,engine,total_ms,h2d_ms,compute_ms,d2h_ms,\
             iterations,converged,gld_efficiency,gst_efficiency,warp_efficiency\n",
        );
        for c in &self.cells {
            let s = &c.stats;
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{},{},{:.6},{:.6},{:.6}\n",
                c.dataset,
                c.benchmark,
                c.engine.label(),
                s.total_ms(),
                s.h2d_seconds * 1e3,
                s.compute_seconds * 1e3,
                s.d2h_seconds * 1e3,
                s.iterations,
                s.converged,
                s.kernel.gld_efficiency(),
                s.kernel.gst_efficiency(),
                s.kernel.warp_execution_efficiency(),
            ));
        }
        out
    }
}

fn range_ms(cells: &[&CellResult]) -> Option<(f64, f64)> {
    if cells.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for c in cells {
        let ms = c.stats.total_ms();
        lo = lo.min(ms);
        hi = hi.max(ms);
    }
    Some((lo, hi))
}

/// Runs one cell.
pub fn run_cell(
    g: &Graph,
    ds: Dataset,
    b: Benchmark,
    e: Engine,
    max_iterations: u32,
) -> CellResult {
    CellResult {
        dataset: ds,
        benchmark: b,
        engine: e,
        stats: b.run(g, e, max_iterations),
    }
}

/// Computes the matrix over the cross product of the inputs.
///
/// `scale` is the surrogate scale divisor (see
/// [`cusha_graph::surrogates::Dataset::generate`]); `verbose` streams
/// per-cell progress to stderr through the [`cusha_obs::log`] logger
/// (info level, so `--log-level warn` silences it).
pub fn run_matrix(
    datasets: &[Dataset],
    benchmarks: &[Benchmark],
    engines: &[Engine],
    scale: u64,
    max_iterations: u32,
    verbose: bool,
) -> MatrixResult {
    run_matrix_jobs(
        datasets,
        benchmarks,
        engines,
        scale,
        max_iterations,
        verbose,
        0,
    )
}

/// [`run_matrix`] with an explicit worker-thread count for the GPU cells
/// (`0` = auto: `CUSHA_JOBS`, then the host's available parallelism). Every
/// cell is a deterministic simulator run and the result vector is
/// reassembled in work-item order, so any `jobs` value yields a
/// byte-identical matrix — `jobs` only changes how the wall clock is spent.
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_jobs(
    datasets: &[Dataset],
    benchmarks: &[Benchmark],
    engines: &[Engine],
    scale: u64,
    max_iterations: u32,
    verbose: bool,
    jobs: usize,
) -> MatrixResult {
    let graphs: Vec<(Dataset, Graph)> = datasets
        .iter()
        .map(|&ds| (ds, ds.generate(scale)))
        .collect();
    let graph_sizes = graphs
        .iter()
        .map(|(ds, g)| (*ds, g.num_edges() as u64, g.num_vertices() as u64))
        .collect();

    // Work items, GPU first (parallel), CPU afterwards (sequential).
    let mut gpu_items = Vec::new();
    let mut cpu_items = Vec::new();
    for (gi, (ds, _)) in graphs.iter().enumerate() {
        for &b in benchmarks {
            for &e in engines {
                if e.is_gpu() {
                    gpu_items.push((gi, *ds, b, e));
                } else {
                    cpu_items.push((gi, *ds, b, e));
                }
            }
        }
    }

    // Slot-indexed reassembly: workers claim items through the shared
    // counter in whatever order the scheduler allows, but every result
    // lands in its item's own slot, so the finished vector is in work-item
    // order no matter how the race went.
    let slots: Vec<Mutex<Option<CellResult>>> =
        gpu_items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = cusha_core::effective_jobs(jobs).min(gpu_items.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= gpu_items.len() {
                    break;
                }
                let (gi, ds, b, e) = gpu_items[i];
                let cell = run_cell(&graphs[gi].1, ds, b, e, max_iterations);
                if verbose {
                    cusha_obs::log::write(
                        cusha_obs::Level::Info,
                        &format!(
                            "matrix [{}/{}] {} {} {}: {:.1} ms ({} iters)",
                            i + 1,
                            gpu_items.len(),
                            ds,
                            b,
                            e.label(),
                            cell.stats.total_ms(),
                            cell.stats.iterations
                        ),
                    );
                }
                *slots[i].lock().unwrap() = Some(cell);
            });
        }
    });
    let mut cells: Vec<CellResult> = slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every GPU cell computed"))
        .collect();
    cells.reserve(cpu_items.len());
    for (gi, ds, b, e) in cpu_items {
        let cell = run_cell(&graphs[gi].1, ds, b, e, max_iterations);
        if verbose {
            cusha_obs::log::write(
                cusha_obs::Level::Info,
                &format!(
                    "matrix [cpu] {} {} {}: {:.1} ms ({} iters)",
                    ds,
                    b,
                    e.label(),
                    cell.stats.total_ms(),
                    cell.stats.iterations
                ),
            );
        }
        cells.push(cell);
    }
    MatrixResult {
        cells,
        scale,
        graph_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: u64 = 2048;

    #[test]
    fn small_matrix_runs_and_indexes() {
        let m = run_matrix(
            &[Dataset::Amazon0312],
            &[Benchmark::Bfs, Benchmark::Sssp],
            &[
                Engine::CuShaGs,
                Engine::CuShaCw,
                Engine::Vwc(8),
                Engine::Vwc(32),
                Engine::Mtcpu(2),
            ],
            SCALE,
            500,
            false,
        );
        assert_eq!(m.cells.len(), 2 * 5);
        let cell = m
            .get(Dataset::Amazon0312, Benchmark::Bfs, Engine::CuShaCw)
            .unwrap();
        assert!(cell.stats.converged);
        let (lo, hi) = m.vwc_range_ms(Dataset::Amazon0312, Benchmark::Bfs).unwrap();
        assert!(lo <= hi);
        let best = m.best_vwc(Dataset::Amazon0312, Benchmark::Sssp).unwrap();
        assert!((best.stats.total_ms() - lo).abs() >= 0.0);
        assert!(m
            .mtcpu_range_ms(Dataset::Amazon0312, Benchmark::Bfs)
            .is_some());
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let m = run_matrix(
            &[Dataset::Amazon0312],
            &[Benchmark::Bfs],
            &[Engine::CuShaGs, Engine::Vwc(8)],
            SCALE,
            300,
            false,
        );
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 1 + m.cells.len());
        assert!(csv.starts_with("dataset,benchmark,engine"));
        assert!(csv.contains("Amazon0312,BFS,CuSha-GS,"));
    }

    #[test]
    fn jobs_do_not_change_the_matrix() {
        // The slot-indexed reassembly must make the worker count
        // observationally invisible: byte-identical CSV (every modeled
        // time, counter and convergence flag) at 1 vs 4 workers. Simulated
        // engines only — the MTCPU baseline reports real host wall clock,
        // which is nondeterministic run-to-run regardless of jobs.
        let run = |jobs| {
            run_matrix_jobs(
                &[Dataset::Amazon0312, Dataset::WebGoogle],
                &[Benchmark::Bfs, Benchmark::Pr],
                &[Engine::CuShaGs, Engine::CuShaCw, Engine::Vwc(32)],
                SCALE,
                200,
                false,
                jobs,
            )
            .to_csv()
        };
        assert_eq!(run(1), run(4), "matrix CSV diverged across job counts");
    }

    #[test]
    fn missing_cell_returns_none() {
        let m = run_matrix(
            &[Dataset::WebGoogle],
            &[Benchmark::Cc],
            &[Engine::CuShaGs],
            SCALE,
            500,
            false,
        );
        assert!(m
            .get(Dataset::WebGoogle, Benchmark::Cc, Engine::CuShaCw)
            .is_none());
        assert!(m.vwc_range_ms(Dataset::WebGoogle, Benchmark::Cc).is_none());
    }
}
