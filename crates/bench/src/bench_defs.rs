//! Benchmark and engine enumerations used by every experiment.

use cusha_algos::{
    Bfs, CircuitSimulation, ConnectedComponents, HeatSimulation, NeuralNetwork, PageRank, Sssp,
    Sswp,
};
use cusha_baselines::{run_mtcpu, run_vwc, MtcpuConfig, VwcConfig};
use cusha_core::{run as run_cusha, CuShaConfig, Repr, RunStats, VertexProgram};
use cusha_frontier::{run_frontier, FrontierConfig};
use cusha_graph::{Graph, VertexId};

/// The eight benchmarks of Table 3, in the paper's column order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Breadth-First Search.
    Bfs,
    /// Single-Source Shortest Path.
    Sssp,
    /// PageRank.
    Pr,
    /// Connected Components.
    Cc,
    /// Single-Source Widest Path.
    Sswp,
    /// Neural Network relaxation.
    Nn,
    /// Heat Simulation.
    Hs,
    /// Circuit Simulation.
    Cs,
}

impl Benchmark {
    /// All eight benchmarks in paper order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Bfs,
        Benchmark::Sssp,
        Benchmark::Pr,
        Benchmark::Cc,
        Benchmark::Sswp,
        Benchmark::Nn,
        Benchmark::Hs,
        Benchmark::Cs,
    ];

    /// Column label as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bfs => "BFS",
            Benchmark::Sssp => "SSSP",
            Benchmark::Pr => "PR",
            Benchmark::Cc => "CC",
            Benchmark::Sswp => "SSWP",
            Benchmark::Nn => "NN",
            Benchmark::Hs => "HS",
            Benchmark::Cs => "CS",
        }
    }

    /// `sizeof(Vertex)`, `sizeof(Edge)`, `sizeof(StaticVertex)` of this
    /// benchmark (Figure 9's inputs).
    pub fn value_sizes(self) -> cusha_core::memsize::ValueSizes {
        use cusha_core::memsize::ValueSizes;
        match self {
            Benchmark::Bfs | Benchmark::Cc => ValueSizes {
                vertex: 4,
                edge: 0,
                static_vertex: 0,
            },
            Benchmark::Sssp | Benchmark::Sswp => ValueSizes {
                vertex: 4,
                edge: 4,
                static_vertex: 0,
            },
            Benchmark::Pr => ValueSizes {
                vertex: 4,
                edge: 0,
                static_vertex: 4,
            },
            Benchmark::Nn => ValueSizes {
                vertex: 4,
                edge: 4,
                static_vertex: 0,
            },
            Benchmark::Hs | Benchmark::Cs => ValueSizes {
                vertex: 8,
                edge: 4,
                static_vertex: 0,
            },
        }
    }

    /// Runs this benchmark on `engine`, returning only the statistics
    /// (values are validated in the test suites, not the harness).
    pub fn run(self, g: &Graph, engine: Engine, max_iterations: u32) -> RunStats {
        let source = default_source(g);
        match self {
            Benchmark::Bfs => dispatch(&Bfs::new(source), g, engine, max_iterations),
            Benchmark::Sssp => dispatch(&Sssp::new(source), g, engine, max_iterations),
            Benchmark::Pr => dispatch(&PageRank::new(), g, engine, max_iterations),
            Benchmark::Cc => dispatch(&ConnectedComponents::new(), g, engine, max_iterations),
            Benchmark::Sswp => dispatch(&Sswp::new(source), g, engine, max_iterations),
            Benchmark::Nn => dispatch(&NeuralNetwork::new(), g, engine, max_iterations),
            Benchmark::Hs => dispatch(&HeatSimulation::new(), g, engine, max_iterations),
            Benchmark::Cs => {
                let gnd = g.num_vertices().saturating_sub(1);
                dispatch(
                    &CircuitSimulation::new(source, gnd),
                    g,
                    engine,
                    max_iterations,
                )
            }
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An executor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// CuSha with the G-Shards representation.
    CuShaGs,
    /// CuSha with Concatenated Windows.
    CuShaCw,
    /// Virtual warp-centric CSR with the given virtual warp width.
    Vwc(usize),
    /// Multithreaded CPU CSR with the given thread count.
    Mtcpu(usize),
    /// Frontier engine with push/pull direction switching.
    Frontier,
}

impl Engine {
    /// Report label ("CuSha-CW", "VWC-CSR/8", ...).
    pub fn label(self) -> String {
        match self {
            Engine::CuShaGs => "CuSha-GS".into(),
            Engine::CuShaCw => "CuSha-CW".into(),
            Engine::Vwc(vw) => format!("VWC-CSR/{vw}"),
            Engine::Mtcpu(t) => format!("MTCPU-CSR/{t}"),
            Engine::Frontier => "Frontier".into(),
        }
    }

    /// Whether this engine runs on the simulated GPU (its times are modeled
    /// rather than measured).
    pub fn is_gpu(self) -> bool {
        !matches!(self, Engine::Mtcpu(_))
    }

    /// Parses one `--engines` list element: `gs`, `cw`, `frontier`,
    /// `vwc:<width>`, `mtcpu:<threads>`.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "gs" => Some(Engine::CuShaGs),
            "cw" => Some(Engine::CuShaCw),
            "frontier" => Some(Engine::Frontier),
            _ => {
                let (kind, n) = s.split_once(':')?;
                let n: usize = n.parse().ok()?;
                match (kind, n) {
                    (_, 0) => None,
                    ("vwc", _) => Some(Engine::Vwc(n)),
                    ("mtcpu", _) => Some(Engine::Mtcpu(n)),
                    _ => None,
                }
            }
        }
    }
}

fn dispatch<P: VertexProgram>(
    prog: &P,
    g: &Graph,
    engine: Engine,
    max_iterations: u32,
) -> RunStats {
    match engine {
        Engine::CuShaGs => {
            let mut cfg = CuShaConfig::new(Repr::GShards);
            cfg.max_iterations = max_iterations;
            run_cusha(prog, g, &cfg).stats
        }
        Engine::CuShaCw => {
            let mut cfg = CuShaConfig::new(Repr::ConcatWindows);
            cfg.max_iterations = max_iterations;
            run_cusha(prog, g, &cfg).stats
        }
        Engine::Vwc(vw) => {
            let mut cfg = VwcConfig::new(vw);
            cfg.max_iterations = max_iterations;
            run_vwc(prog, g, &cfg).stats
        }
        Engine::Mtcpu(t) => {
            let mut cfg = MtcpuConfig::new(t);
            cfg.max_iterations = max_iterations;
            run_mtcpu(prog, g, &cfg).stats
        }
        Engine::Frontier => {
            let mut cfg = FrontierConfig::new();
            cfg.max_iterations = max_iterations;
            run_frontier(prog, g, &cfg).stats
        }
    }
}

/// Default traversal source: the vertex with the largest out-degree, so the
/// single-source algorithms reach a substantial part of every surrogate.
pub fn default_source(g: &Graph) -> VertexId {
    let out = g.out_degrees();
    out.iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map(|(v, _)| v as u32)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusha_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn every_benchmark_runs_on_every_engine_kind() {
        let g = rmat(&RmatConfig::graph500(6, 300, 50));
        for b in Benchmark::ALL {
            for e in [
                Engine::CuShaGs,
                Engine::CuShaCw,
                Engine::Vwc(8),
                Engine::Mtcpu(2),
                Engine::Frontier,
            ] {
                let stats = b.run(&g, e, 2000);
                assert!(stats.iterations > 0, "{b} on {}", e.label());
                assert!(stats.converged, "{b} on {} did not converge", e.label());
            }
        }
    }

    #[test]
    fn default_source_is_a_hub() {
        let g = rmat(&RmatConfig::graph500(7, 2000, 51));
        let s = default_source(&g);
        let out = g.out_degrees();
        assert_eq!(out[s as usize], *out.iter().max().unwrap());
    }

    #[test]
    fn labels() {
        assert_eq!(Engine::Vwc(16).label(), "VWC-CSR/16");
        assert_eq!(Engine::CuShaCw.label(), "CuSha-CW");
        assert!(Engine::CuShaGs.is_gpu());
        assert!(!Engine::Mtcpu(4).is_gpu());
        assert!(Engine::Frontier.is_gpu());
        assert_eq!(Engine::Frontier.label(), "Frontier");
    }

    #[test]
    fn engine_list_elements_parse() {
        assert_eq!(Engine::parse("gs"), Some(Engine::CuShaGs));
        assert_eq!(Engine::parse("cw"), Some(Engine::CuShaCw));
        assert_eq!(Engine::parse("frontier"), Some(Engine::Frontier));
        assert_eq!(Engine::parse("vwc:8"), Some(Engine::Vwc(8)));
        assert_eq!(Engine::parse("mtcpu:4"), Some(Engine::Mtcpu(4)));
        for bad in ["", "vwc", "vwc:0", "vwc:x", "mtcpu:", "warp:8", "GS"] {
            assert_eq!(Engine::parse(bad), None, "{bad:?} should not parse");
        }
    }
}
