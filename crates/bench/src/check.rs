//! `repro --check` — the perf-regression gate.
//!
//! Takes a committed baseline artifact (`results/frontier_matrix.json` or
//! `BENCH_simwall.json`), reruns the experiment **at the baseline's own
//! recorded configuration**, and compares every metric against a
//! per-metric tolerance band:
//!
//! * `frontier_matrix` carries *modeled* milliseconds, which are
//!   deterministic — the default band is tight (10%, and in practice the
//!   diff is zero unless the model changed), and structural facts
//!   (iterations, convergence, winner, the road-network flip) must match
//!   exactly.
//! * `cusha-simwall/v1` carries *host* wall-clock seconds, which depend
//!   on the machine — the default band is loose (75%) and the gate is a
//!   sanity check against order-of-magnitude slowdowns, not a timer. The
//!   committed `BENCH_simwall.json` is a `cusha-simwall-history/v1`
//!   document (every recorded run, oldest first); the gate checks the
//!   latest entry, including its total sequential seconds.
//!
//! The report lists one line per compared metric; any line outside its
//! band is a regression and the caller exits non-zero (the CI perf-gate
//! job fails).

use crate::experiments::{frontier_matrix, Ctx};
use crate::simwall;
use cusha_obs::{parse_json, Json};

/// Default relative tolerance for deterministic modeled milliseconds.
pub const MODELED_TOLERANCE: f64 = 0.10;
/// Default relative tolerance for host wall-clock seconds.
pub const WALL_TOLERANCE: f64 = 0.75;

/// Outcome of one `--check` run.
pub struct CheckReport {
    /// One line per compared metric (prefixed `ok` or `REGRESSION`).
    pub lines: Vec<String>,
    /// Metrics compared.
    pub checked: usize,
    /// Metrics outside their tolerance band.
    pub regressions: usize,
}

impl CheckReport {
    /// Whether every metric stayed inside its band.
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }

    /// Renders the full report, one metric per line plus a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&format!(
            "perf-gate: {} metrics checked, {} regressions — {}\n",
            self.checked,
            self.regressions,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    fn ok(&mut self, line: String) {
        self.checked += 1;
        self.lines.push(format!("ok          {line}"));
    }

    fn fail(&mut self, line: String) {
        self.checked += 1;
        self.regressions += 1;
        self.lines.push(format!("REGRESSION  {line}"));
    }

    fn compare_f64(&mut self, what: &str, base: f64, cur: f64, tol: f64) {
        let denom = base.abs().max(cur.abs()).max(1e-12);
        let rel = (cur - base).abs() / denom;
        let line = format!(
            "{what}: baseline {base:.6}, current {cur:.6} ({:+.2}% off)",
            (cur - base) / denom * 100.0
        );
        if rel <= tol {
            self.ok(line);
        } else {
            self.fail(format!("{line}, tolerance {:.0}%", tol * 100.0));
        }
    }

    fn compare_exact<T: PartialEq + std::fmt::Display>(&mut self, what: &str, base: T, cur: T) {
        if base == cur {
            self.ok(format!("{what}: {base}"));
        } else {
            self.fail(format!("{what}: baseline {base}, current {cur}"));
        }
    }
}

/// Checks `baseline_text` (a committed artifact JSON) against a fresh
/// rerun at the baseline's recorded configuration. `tolerance` overrides
/// the artifact's default band; `ctx` contributes only host-side knobs
/// (worker threads, verbosity) — scale and iteration caps come from the
/// baseline itself.
pub fn check_baseline(
    baseline_text: &str,
    tolerance: Option<f64>,
    ctx: &Ctx,
) -> Result<CheckReport, String> {
    let doc = parse_json(baseline_text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) == Some("cusha-simwall/v1") {
        return Ok(check_simwall(
            &doc,
            tolerance.unwrap_or(WALL_TOLERANCE),
            ctx,
        ));
    }
    if doc.get("schema").and_then(Json::as_str) == Some("cusha-simwall-history/v1") {
        // The committed artifact keeps every recorded run; the gate compares
        // against the latest entry (the one the current tree should match).
        let last = doc
            .get("runs")
            .and_then(Json::as_arr)
            .and_then(<[Json]>::last)
            .ok_or_else(|| "cusha-simwall-history/v1 baseline has no runs".to_string())?;
        return Ok(check_simwall(
            last,
            tolerance.unwrap_or(WALL_TOLERANCE),
            ctx,
        ));
    }
    if doc.get("experiment").and_then(Json::as_str) == Some("frontier_matrix") {
        return Ok(check_frontier_matrix(
            &doc,
            tolerance.unwrap_or(MODELED_TOLERANCE),
            ctx,
        ));
    }
    Err("unrecognized baseline: expected a cusha-simwall/v1, cusha-simwall-history/v1 \
         or frontier_matrix artifact"
        .into())
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("baseline is missing numeric field {key:?}"))
}

fn check_frontier_matrix(doc: &Json, tol: f64, host: &Ctx) -> CheckReport {
    let mut rep = CheckReport {
        lines: Vec::new(),
        checked: 0,
        regressions: 0,
    };
    let (scale, max_iterations) = match (
        u64_field(doc, "scale_divisor"),
        u64_field(doc, "max_iterations"),
    ) {
        (Ok(s), Ok(m)) => (s, m),
        (s, m) => {
            for e in [s.err(), m.err()].into_iter().flatten() {
                rep.fail(e);
            }
            return rep;
        }
    };
    let ctx = Ctx {
        scale,
        max_iterations: max_iterations as u32,
        ..*host
    };
    let cur = frontier_matrix::run(&ctx);
    rep.compare_exact(
        "road_network_winner_flips",
        doc.get("road_network_winner_flips")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        cur.road_network_winner_flips,
    );
    let base_rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    for row in &base_rows {
        let ds = row.get("dataset").and_then(Json::as_str).unwrap_or("?");
        let bench = row.get("benchmark").and_then(Json::as_str).unwrap_or("?");
        let Some(cur_row) = cur
            .rows
            .iter()
            .find(|r| r.dataset.to_string() == ds && r.benchmark.to_string() == bench)
        else {
            rep.fail(format!("{ds}/{bench}: row missing from current run"));
            continue;
        };
        rep.compare_exact(
            &format!("{ds}/{bench} winner"),
            row.get("winner").and_then(Json::as_str).unwrap_or("?"),
            cur_row.winner.as_str(),
        );
        let engines = row
            .get("engines")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default();
        for cell in &engines {
            let label = cell.get("engine").and_then(Json::as_str).unwrap_or("?");
            let Some((_, cur_ms, cur_iters, cur_conv)) =
                cur_row.cells.iter().find(|c| c.0 == label)
            else {
                rep.fail(format!(
                    "{ds}/{bench}/{label}: engine missing from current run"
                ));
                continue;
            };
            rep.compare_f64(
                &format!("{ds}/{bench}/{label} total_ms"),
                cell.get("total_ms").and_then(Json::as_f64).unwrap_or(0.0),
                *cur_ms,
                tol,
            );
            rep.compare_exact(
                &format!("{ds}/{bench}/{label} iterations"),
                cell.get("iterations").and_then(Json::as_u64).unwrap_or(0),
                u64::from(*cur_iters),
            );
            rep.compare_exact(
                &format!("{ds}/{bench}/{label} converged"),
                cell.get("converged")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                *cur_conv,
            );
        }
    }
    rep
}

fn check_simwall(doc: &Json, tol: f64, host: &Ctx) -> CheckReport {
    let mut rep = CheckReport {
        lines: Vec::new(),
        checked: 0,
        regressions: 0,
    };
    let (scale, max_iterations) = match (u64_field(doc, "scale"), u64_field(doc, "max_iterations"))
    {
        (Ok(s), Ok(m)) => (s, m),
        (s, m) => {
            for e in [s.err(), m.err()].into_iter().flatten() {
                rep.fail(e);
            }
            return rep;
        }
    };
    let cur = simwall::run(scale, max_iterations as u32, host.jobs);
    rep.compare_exact("outputs_identical", true, cur.outputs_identical);
    // The headline number the simulator-perf work is graded on: total
    // sequential host seconds over the fixed cell subset, banded like the
    // per-cell times.
    if let Some(base_seq) = doc
        .get("sequential")
        .and_then(|s| s.get("total_seconds"))
        .and_then(Json::as_f64)
    {
        rep.compare_f64("sequential total_seconds", base_seq, cur.sequential_seconds, tol);
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    for cell in &cells {
        let ds = cell.get("dataset").and_then(Json::as_str).unwrap_or("?");
        let bench = cell.get("benchmark").and_then(Json::as_str).unwrap_or("?");
        let eng = cell.get("engine").and_then(Json::as_str).unwrap_or("?");
        let Some(cur_cell) = cur.cells.iter().find(|c| {
            c.dataset.to_string() == ds
                && c.benchmark.to_string() == bench
                && c.engine.label() == eng
        }) else {
            rep.fail(format!("{ds}/{bench}/{eng}: cell missing from current run"));
            continue;
        };
        rep.compare_f64(
            &format!("{ds}/{bench}/{eng} host seconds"),
            cell.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
            cur_cell.seconds,
            tol,
        );
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Ctx {
        Ctx {
            scale: 4096,
            rmat_scale: 4096,
            max_iterations: 300,
            verbose: false,
            jobs: 0,
        }
    }

    /// A baseline generated and checked in-process: byte-deterministic
    /// modeled times mean the unmodified rerun passes with zero diff.
    #[test]
    fn unmodified_frontier_baseline_passes() {
        let ctx = tiny_ctx();
        let baseline = frontier_matrix::run(&ctx).to_json();
        let rep = check_baseline(&baseline, None, &ctx).unwrap();
        assert!(rep.passed(), "{}", rep.render());
        assert!(rep.checked > 0);
    }

    #[test]
    fn perturbed_metric_is_flagged() {
        let ctx = tiny_ctx();
        let baseline = frontier_matrix::run(&ctx).to_json();
        // Halve one recorded total_ms: far outside the 10% band.
        let idx = baseline.find("\"total_ms\": ").unwrap() + "\"total_ms\": ".len();
        let end = idx + baseline[idx..].find(',').unwrap();
        let ms: f64 = baseline[idx..end].parse().unwrap();
        let perturbed = format!("{}{:.6}{}", &baseline[..idx], ms * 2.0, &baseline[end..]);
        let rep = check_baseline(&perturbed, None, &ctx).unwrap();
        assert!(!rep.passed());
        assert!(rep.render().contains("REGRESSION"));
        // Structural perturbation (winner flip) is caught exactly.
        let flipped = baseline.replace(
            "\"road_network_winner_flips\": true",
            "\"road_network_winner_flips\": false",
        );
        if flipped != baseline {
            let rep = check_baseline(&flipped, None, &ctx).unwrap();
            assert!(!rep.passed());
        }
    }

    /// The committed `BENCH_simwall.json` is a history document; the gate
    /// must pick its latest run and band the sequential total alongside the
    /// per-cell times.
    #[test]
    fn simwall_history_baseline_checks_latest_run() {
        let ctx = tiny_ctx();
        // Discarded warm-up: the process's first run pays one-time costs
        // (lazy page faults, thread-pool spin-up) that at this tiny scale
        // dwarf the cells themselves and would blow the tolerance band.
        let _ = simwall::run(4096, 50, 2);
        let run_json = simwall::run(4096, 50, 2).to_json();
        // A bogus older run that would fail hard if the gate compared
        // against it (zero cells would all be "missing from current run").
        let stale = "{\"schema\": \"cusha-simwall/v1\", \"scale\": 1, \
                     \"max_iterations\": 1, \"cells\": [], \
                     \"sequential\": {\"jobs\": 1, \"total_seconds\": 9999.0}}";
        let history = format!(
            "{{\"schema\": \"cusha-simwall-history/v1\", \"runs\": [{stale}, {run_json}]}}"
        );
        let rep = check_baseline(&history, None, &ctx).unwrap();
        assert!(rep.passed(), "{}", rep.render());
        assert!(
            rep.render().contains("sequential total_seconds"),
            "sequential band missing:\n{}",
            rep.render()
        );
        // An empty history is a configuration error, not a pass.
        assert!(check_baseline(
            "{\"schema\": \"cusha-simwall-history/v1\", \"runs\": []}",
            None,
            &ctx
        )
        .is_err());
    }

    #[test]
    fn unknown_baseline_is_an_error() {
        assert!(check_baseline("{\"schema\":\"nope\"}", None, &tiny_ctx()).is_err());
        assert!(check_baseline("not json", None, &tiny_ctx()).is_err());
    }
}
