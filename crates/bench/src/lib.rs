#![warn(missing_docs)]

//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 5) against the simulated GPU and surrogate graphs.
//!
//! The `repro` binary drives the [`experiments`] modules; each module's
//! `run` function prints a paper-formatted artifact. The mapping from
//! artifact id to module is tabulated in `DESIGN.md` (per-experiment index)
//! and the expected-vs-measured record lives in `EXPERIMENTS.md`.

pub mod bench_defs;
pub mod check;
pub mod experiments;
pub mod matrix;
pub mod simwall;
pub mod table;

pub use bench_defs::{default_source, Benchmark, Engine};
pub use check::{check_baseline, CheckReport};
pub use matrix::{run_cell, run_matrix_jobs, CellResult, MatrixResult};
pub use table::Table;
