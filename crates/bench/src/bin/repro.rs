//! `repro` — regenerates every table and figure of the CuSha paper.
//!
//! ```text
//! repro [ARTIFACT ...] [--scale N] [--rmat-scale N] [--max-iters N]
//!       [--jobs N] [--engines LIST] [--out-dir DIR] [--verbose]
//!       [--log-level LEVEL]
//! repro --check BASELINE.json [--tolerance R]
//!
//! ARTIFACT: all (default) | layouts | table1 | table2 | table4 | table5 |
//!           table6 | table7 | fig1 | fig7 | fig8 | fig9 | fig10 | fig11 |
//!           fig12 | fig13 | ablation | frontier_matrix |
//!           simwall (opt-in, not part of all)
//!
//! --scale N         dataset surrogate scale divisor (default 64;
//!                   1 = full Table-1 sizes)
//! --rmat-scale N    RMAT sweep scale divisor for fig11/12/13 (default 64)
//! --max-iters N     convergence-loop cap (default 300)
//! --engines LIST    comma-separated engine filter for the result matrix
//!                   and frontier_matrix (gs|cw|frontier|vwc:<w>|mtcpu:<t>),
//!                   e.g. `--engines gs,frontier` for a head-to-head
//!                   without the full matrix
//! --jobs N          host worker threads for simulator cells and fleet
//!                   devices (default: available parallelism; CUSHA_JOBS
//!                   env is the fallback). Outputs are byte-identical for
//!                   any value — only the host wall clock changes.
//! --out-dir DIR     also write each artifact report and the raw matrix CSV
//! --verbose         stream per-cell progress to stderr
//! --log-level LEVEL error|warn|info|debug|trace (default info)
//! ```
//!
//! All progress chatter goes through the [`cusha_obs::log`] leveled stderr
//! logger; stdout carries only the artifact reports, so
//! `repro table2 > table2.txt` stays clean under any log level.

use cusha_baselines::{MTCPU_THREADS, VIRTUAL_WARP_SIZES};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_bench::experiments::{self, Ctx};
use cusha_bench::matrix::{run_matrix_jobs, MatrixResult};
use cusha_bench::simwall;
use cusha_graph::surrogates::Dataset;
use cusha_obs::{log, Level};

const MATRIX_ARTIFACTS: [&str; 7] = [
    "table2", "table4", "table5", "table6", "table7", "fig7", "fig8",
];
const ALL_ARTIFACTS: [&str; 18] = [
    "layouts",
    "table1",
    "fig1",
    "table2",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "ablation",
    "multi_gpu_scaling",
    "frontier_matrix",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = Ctx::default();
    let mut artifacts: Vec<String> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut engines_filter: Option<Vec<Engine>> = None;
    let mut check_path: Option<String> = None;
    let mut check_tolerance: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                i += 1;
                check_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--check needs a baseline JSON path");
                    std::process::exit(2);
                }));
            }
            "--tolerance" => {
                i += 1;
                check_tolerance =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--tolerance needs a relative fraction, e.g. 0.1");
                        std::process::exit(2);
                    }));
            }
            "--scale" => {
                i += 1;
                ctx.scale = parse(&args, i, "--scale");
            }
            "--rmat-scale" => {
                i += 1;
                ctx.rmat_scale = parse(&args, i, "--rmat-scale");
            }
            "--max-iters" => {
                i += 1;
                ctx.max_iterations = parse(&args, i, "--max-iters") as u32;
            }
            "--jobs" | "-j" => {
                i += 1;
                ctx.jobs = parse(&args, i, "--jobs") as usize;
                // The fleet engine and any nested run resolve through the
                // environment, so one flag covers every simulator layer.
                std::env::set_var("CUSHA_JOBS", ctx.jobs.to_string());
            }
            "--verbose" | "-v" => ctx.verbose = true,
            "--log-level" => {
                i += 1;
                let value = args.get(i).cloned().unwrap_or_default();
                match Level::parse(&value) {
                    Some(level) => log::set_level(level),
                    None => {
                        eprintln!("--log-level needs one of error|warn|info|debug|trace");
                        std::process::exit(2);
                    }
                }
            }
            "--engines" => {
                i += 1;
                let list = args.get(i).cloned().unwrap_or_default();
                let parsed: Option<Vec<Engine>> = list.split(',').map(Engine::parse).collect();
                match parsed {
                    Some(es) if !es.is_empty() => engines_filter = Some(es),
                    _ => {
                        eprintln!(
                            "--engines needs a comma-separated list of \
                             gs|cw|frontier|vwc:<width>|mtcpu:<threads>, got {list:?}"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--out-dir" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out-dir needs a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            a if a.starts_with('-') => {
                eprintln!("unknown flag {a}\n{HELP}");
                std::process::exit(2);
            }
            a => artifacts.push(a.to_string()),
        }
        i += 1;
    }
    // Perf-regression gate: rerun the baseline's experiment at its own
    // recorded configuration, compare within tolerance bands, and exit
    // non-zero on any regression. No artifact generation happens.
    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("--check: cannot read {path}: {e}");
            std::process::exit(1);
        });
        log::write(Level::Info, &format!("repro: checking against {path}"));
        match cusha_bench::check::check_baseline(&text, check_tolerance, &ctx) {
            Ok(rep) => {
                print!("{}", rep.render());
                std::process::exit(if rep.passed() { 0 } else { 3 });
            }
            Err(e) => {
                eprintln!("--check: {e}");
                std::process::exit(1);
            }
        }
    }
    if artifacts.is_empty() || artifacts.iter().any(|a| a == "all") {
        artifacts = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }
    for a in &artifacts {
        // simwall is valid but opt-in only: it exists to measure the host
        // wall clock, so it must not ride along inside a bigger run.
        if !ALL_ARTIFACTS.contains(&a.as_str()) && a != "simwall" {
            eprintln!("unknown artifact {a}\n{HELP}");
            std::process::exit(2);
        }
    }
    let needs_mtcpu = artifacts.iter().any(|a| a == "table6");
    let needs_matrix = artifacts
        .iter()
        .any(|a| MATRIX_ARTIFACTS.contains(&a.as_str()));

    log::write(
        Level::Info,
        &format!(
            "repro: scale 1/{}, rmat scale 1/{}, max {} iterations",
            ctx.scale, ctx.rmat_scale, ctx.max_iterations
        ),
    );
    let matrix: Option<MatrixResult> = needs_matrix.then(|| {
        let engines = engines_filter.clone().unwrap_or_else(|| {
            let mut engines = vec![Engine::CuShaGs, Engine::CuShaCw];
            engines.extend(VIRTUAL_WARP_SIZES.iter().map(|&vw| Engine::Vwc(vw)));
            if needs_mtcpu {
                engines.extend(MTCPU_THREADS.iter().map(|&t| Engine::Mtcpu(t)));
            }
            engines
        });
        log::write(
            Level::Info,
            &format!(
                "repro: computing {}x{}x{} result matrix...",
                Dataset::ALL.len(),
                Benchmark::ALL.len(),
                engines.len()
            ),
        );
        run_matrix_jobs(
            &Dataset::ALL,
            &Benchmark::ALL,
            &engines,
            ctx.scale,
            ctx.max_iterations,
            ctx.verbose,
            ctx.jobs,
        )
    });
    if let (Some(dir), Some(m)) = (&out_dir, &matrix) {
        std::fs::create_dir_all(dir).expect("create --out-dir");
        let path = format!("{dir}/matrix.csv");
        std::fs::write(&path, m.to_csv()).expect("write matrix.csv");
        log::write(Level::Info, &format!("repro: wrote {path}"));
    }

    for a in &artifacts {
        let report = match a.as_str() {
            "layouts" => experiments::layouts::run(),
            "table1" => experiments::table1::run(&ctx),
            "fig1" => experiments::fig1::run(&ctx),
            "table2" => experiments::table2::run(matrix.as_ref().unwrap()),
            "table4" => experiments::table4::run(matrix.as_ref().unwrap()),
            "table5" => experiments::table5::run(matrix.as_ref().unwrap()),
            "table6" => experiments::table6::run(matrix.as_ref().unwrap()),
            "table7" => experiments::table7::run(matrix.as_ref().unwrap()),
            "fig7" => experiments::fig7::run(matrix.as_ref().unwrap()),
            "fig8" => experiments::fig8::run(matrix.as_ref().unwrap()),
            "fig9" => experiments::fig9::run(&ctx),
            "fig10" => experiments::fig10::run(matrix.as_ref().unwrap()),
            "fig11" => experiments::fig11::run(&ctx),
            "fig12" => experiments::fig12::run(&ctx),
            "fig13" => experiments::fig13::run(&ctx),
            "ablation" => experiments::ablation::run_all(&ctx),
            "simwall" => {
                let res = simwall::run(ctx.scale, ctx.max_iterations, ctx.jobs);
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create --out-dir");
                    let path = format!("{dir}/BENCH_simwall.json");
                    std::fs::write(&path, res.to_json()).expect("write simwall json");
                    log::write(Level::Info, &format!("repro: wrote {path}"));
                }
                res.report()
            }
            "frontier_matrix" => {
                let res = experiments::frontier_matrix::run_with_engines(
                    &ctx,
                    engines_filter.as_deref().unwrap_or(&[]),
                );
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create --out-dir");
                    let path = format!("{dir}/frontier_matrix.json");
                    std::fs::write(&path, res.to_json()).expect("write frontier matrix json");
                    log::write(Level::Info, &format!("repro: wrote {path}"));
                }
                res.report()
            }
            "multi_gpu_scaling" => {
                let res = experiments::multi_gpu_scaling::run(&ctx);
                if let Some(dir) = &out_dir {
                    std::fs::create_dir_all(dir).expect("create --out-dir");
                    let path = format!("{dir}/multi_gpu_scaling.json");
                    std::fs::write(&path, res.to_json()).expect("write scaling json");
                    log::write(Level::Info, &format!("repro: wrote {path}"));
                    let mpath = format!("{dir}/multi_gpu_scaling_metrics.json");
                    std::fs::write(&mpath, res.metrics_json()).expect("write scaling metrics");
                    log::write(Level::Info, &format!("repro: wrote {mpath}"));
                }
                res.report()
            }
            _ => unreachable!(),
        };
        println!("{report}");
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create --out-dir");
            let path = format!("{dir}/{a}.txt");
            std::fs::write(&path, &report).expect("write artifact report");
        }
    }
}

fn parse(args: &[String], i: usize, flag: &str) -> u64 {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a positive integer");
        std::process::exit(2);
    })
}

const HELP: &str = "\
repro — regenerate the CuSha paper's tables and figures

usage: repro [ARTIFACT ...] [--scale N] [--rmat-scale N] [--max-iters N]
             [--jobs N] [--engines LIST] [--out-dir DIR] [--verbose]
             [--log-level LEVEL]
       repro --check BASELINE.json [--tolerance R]

--check BASELINE.json  perf-regression gate: rerun the baseline artifact's
                       experiment (frontier_matrix or cusha-simwall/v1) at
                       its recorded configuration and compare every metric
                       within a tolerance band (deterministic modeled ms:
                       10%; host wall-clock: 75%; override with
                       --tolerance R). Exits 3 on any regression.

artifacts: all layouts table1 fig1 table2 table4 table5 table6 table7
           fig7 fig8 fig9 fig10 fig11 fig12 fig13 ablation
           multi_gpu_scaling (also writes multi_gpu_scaling.json and
           multi_gpu_scaling_metrics.json to --out-dir)
           frontier_matrix (frontier-vs-shard head-to-head; also writes
           frontier_matrix.json to --out-dir)
           simwall (opt-in, not part of 'all': times the host wall clock
           sequential vs parallel and writes BENCH_simwall.json to
           --out-dir)

--engines LIST narrows the engine set of the shared result matrix and of
frontier_matrix to a comma-separated subset (gs|cw|frontier|vwc:<width>|
mtcpu:<threads>), e.g. `--engines gs,frontier`.

--jobs N (or CUSHA_JOBS=N) sets the host worker-thread count for simulator
matrix cells and fleet devices; any value produces byte-identical artifacts
(default: the host's available parallelism).

Progress goes to stderr via the leveled logger (--log-level error|warn|
info|debug|trace, default info); stdout carries only artifact reports.
";
