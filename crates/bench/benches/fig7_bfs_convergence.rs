//! Figure 7 bench: BFS convergence loop (iteration series source).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_algos::Bfs;
use cusha_bench::bench_defs::default_source;
use cusha_core::{run, CuShaConfig};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 4096;

fn bench(c: &mut Criterion) {
    let g = Dataset::RoadNetCA.generate(SCALE);
    let prog = Bfs::new(default_source(&g));
    for (name, cfg) in [("gs", CuShaConfig::gs()), ("cw", CuShaConfig::cw())] {
        c.bench_function(&format!("fig7/bfs_roadnet/{name}"), |b| {
            b.iter(|| black_box(run(&prog, &g, &cfg).stats.iterations))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
