//! Micro-benchmarks of the substrates: shard/CW construction, CSR
//! construction, generators, and raw simulator kernel throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_core::{ConcatWindows, GShards};
use cusha_graph::generators::rmat::{rmat, RmatConfig};
use cusha_graph::Csr;
use cusha_simt::{warp_chunks, DeviceConfig, Gpu, KernelDesc, Mask};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(13, 1 << 16, 99));

    c.bench_function("substrate/rmat_generate_64k_edges", |b| {
        b.iter(|| black_box(rmat(&RmatConfig::graph500(13, 1 << 16, 7))))
    });

    c.bench_function("substrate/csr_from_graph", |b| {
        b.iter(|| black_box(Csr::from_graph(&g)))
    });

    c.bench_function("substrate/gshards_from_graph_n512", |b| {
        b.iter(|| black_box(GShards::from_graph(&g, 512)))
    });

    let gs = GShards::from_graph(&g, 512);
    c.bench_function("substrate/cw_from_gshards", |b| {
        b.iter(|| black_box(ConcatWindows::from_gshards(&gs)))
    });

    c.bench_function("substrate/simt_coalesced_copy_64k", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceConfig::gtx780());
            let src = gpu.upload(&vec![1u32; 1 << 16]);
            let mut dst = gpu.alloc::<u32>(1 << 16);
            let desc = KernelDesc::new("copy", 64, 256);
            gpu.launch(&desc, |blk| {
                let base = blk.id() as usize * 1024;
                for (start, mask) in warp_chunks(1024) {
                    let vals = blk.gload(&src, mask, |l| base + start + l);
                    blk.gstore(&mut dst, mask, |l| base + start + l, |l| vals[l]);
                }
            });
            black_box(dst.host()[0])
        })
    });

    c.bench_function("substrate/simt_gather_64k", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceConfig::gtx780());
            let src = gpu.upload(&(0..1u32 << 16).collect::<Vec<_>>());
            let desc = KernelDesc::new("gather", 64, 256);
            let stats = gpu.launch(&desc, |blk| {
                let base = blk.id() as usize * 1024;
                for (start, mask) in warp_chunks(1024) {
                    // Strided gather: worst-case coalescing.
                    black_box(blk.gload(&src, mask, |l| (base + start + l * 37) % (1 << 16)));
                }
            });
            black_box(stats.counters.gld_transactions)
        })
    });

    c.bench_function("substrate/mask_ops", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for n in 0..=32 {
                acc += black_box(Mask::first(n)).count();
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
