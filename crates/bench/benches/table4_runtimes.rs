//! Table 4 bench: one (graph, benchmark) cell per engine — the runtime
//! measurement whose full matrix populates Table 4.

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 4096;

fn bench(c: &mut Criterion) {
    let g = Dataset::Amazon0312.generate(SCALE);
    for (name, e) in [
        ("cusha_cw", Engine::CuShaCw),
        ("cusha_gs", Engine::CuShaGs),
        ("vwc8", Engine::Vwc(8)),
    ] {
        c.bench_function(&format!("table4/sssp_amazon/{name}"), |b| {
            b.iter(|| black_box(Benchmark::Sssp.run(&g, e, 300)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
