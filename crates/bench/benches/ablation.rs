//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Shared memory per SM** — the paper's concluding claim: more shared
//!   memory allows larger `|N|`, larger windows, better G-Shards behaviour.
//! * **Threads per block** — the launch-geometry knob the engine defaults
//!   to 256.
//! * **Shard size `|N|`** — autotuned vs deliberately mis-sized (the win
//!   of the Section-4 selection rule).
//! * **Device generation** — GTX 680 vs GTX 780 (SM count + bandwidth).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_algos::Sssp;
use cusha_bench::bench_defs::default_source;
use cusha_bench::experiments::{rmat_sweep_graph, scaled_n};
use cusha_core::{run, CuShaConfig, Repr};
use cusha_simt::DeviceConfig;
use std::hint::black_box;

const SCALE: u64 = 16384;

fn bench(c: &mut Criterion) {
    let g = rmat_sweep_graph(67_000_000, 16_000_000, SCALE);
    let prog = Sssp::new(default_source(&g));

    // (a) shared-memory ablation: autotuned |N| under each device.
    for (name, dev) in [
        ("gtx680", DeviceConfig::gtx680()),
        ("gtx780", DeviceConfig::gtx780()),
        ("big_shared", DeviceConfig::big_shared()),
    ] {
        c.bench_function(&format!("ablation/shared_mem/{name}/gs"), |b| {
            let mut cfg = CuShaConfig::new(Repr::GShards);
            cfg.device = dev.clone();
            b.iter(|| black_box(run(&prog, &g, &cfg).stats.compute_seconds))
        });
    }

    // (b) threads per block.
    for tpb in [128u32, 256, 512] {
        c.bench_function(&format!("ablation/threads_per_block/{tpb}"), |b| {
            let mut cfg = CuShaConfig::new(Repr::ConcatWindows);
            cfg.threads_per_block = tpb;
            b.iter(|| black_box(run(&prog, &g, &cfg).stats.compute_seconds))
        });
    }

    // (c) shard size: autotuned vs deliberately small vs deliberately big.
    let auto = CuShaConfig::new(Repr::GShards);
    let small = CuShaConfig::new(Repr::GShards).with_vertices_per_shard(scaled_n(512, SCALE));
    let big = CuShaConfig::new(Repr::GShards).with_vertices_per_shard(scaled_n(6144, SCALE));
    for (name, cfg) in [("autotuned", auto), ("small_n", small), ("big_n", big)] {
        c.bench_function(&format!("ablation/shard_size/{name}"), |b| {
            b.iter(|| black_box(run(&prog, &g, &cfg).stats.compute_seconds))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
