//! Figure 9 bench: footprint-model evaluation over all graphs/benchmarks
//! (pure arithmetic; establishes it is cheap enough to run per-allocation).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::bench_defs::Benchmark;
use cusha_core::memsize::{csr_bytes, cw_bytes, gshards_bytes};
use cusha_core::select_vertices_per_shard;
use cusha_graph::surrogates::Dataset;
use cusha_simt::DeviceConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let dev = DeviceConfig::gtx780();
    c.bench_function("fig9/footprints_all_graphs_all_benchmarks", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for ds in Dataset::ALL {
                let (e, v) = ds.paper_size();
                for bench in Benchmark::ALL {
                    let s = bench.value_sizes();
                    let n = select_vertices_per_shard(v, e, s.vertex.max(1), &dev, 2) as u64;
                    let p = v.div_ceil(n).max(1);
                    acc = acc
                        .wrapping_add(csr_bytes(v, e, s))
                        .wrapping_add(gshards_bytes(v, e, p, s))
                        .wrapping_add(cw_bytes(v, e, p, s));
                }
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
