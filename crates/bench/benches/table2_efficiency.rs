//! Table 2 bench: VWC-CSR efficiency profiling run (the measurement whose
//! min/max ranges populate Table 2).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 4096;

fn bench(c: &mut Criterion) {
    let g = Dataset::WebGoogle.generate(SCALE);
    for vw in [4usize, 32] {
        c.bench_function(&format!("table2/vwc{vw}_bfs_webgoogle"), |b| {
            b.iter(|| black_box(Benchmark::Bfs.run(&g, Engine::Vwc(vw), 300)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
