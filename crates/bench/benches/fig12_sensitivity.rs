//! Figure 12 bench: one GS-vs-CW sensitivity point (sparse graph, small
//! |N| — the regime where the representations diverge most).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_algos::Sssp;
use cusha_bench::bench_defs::default_source;
use cusha_bench::experiments::{rmat_sweep_graph, scaled_n};
use cusha_core::{run, CuShaConfig, Repr};
use std::hint::black_box;

const SCALE: u64 = 16384;

fn bench(c: &mut Criterion) {
    let g = rmat_sweep_graph(67_000_000, 16_000_000, SCALE);
    let prog = Sssp::new(default_source(&g));
    let n = scaled_n(1024, SCALE);
    for (name, repr) in [("gs", Repr::GShards), ("cw", Repr::ConcatWindows)] {
        c.bench_function(&format!("fig12/sssp_67_16_smallN/{name}"), |b| {
            let cfg = CuShaConfig::new(repr).with_vertices_per_shard(n);
            b.iter(|| black_box(run(&prog, &g, &cfg).stats.total_ms()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
