//! Figure 8 bench: the profiled kernels whose efficiency averages form the
//! figure (LiveJournal surrogate, heavily scaled for bench time).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 16384;

fn bench(c: &mut Criterion) {
    let g = Dataset::LiveJournal.generate(SCALE);
    for (name, e) in [
        ("cusha_gs", Engine::CuShaGs),
        ("cusha_cw", Engine::CuShaCw),
        ("vwc8", Engine::Vwc(8)),
    ] {
        c.bench_function(&format!("fig8/pr_livejournal/{name}"), |b| {
            b.iter(|| {
                let stats = Benchmark::Pr.run(&g, e, 200);
                black_box((
                    stats.kernel.gld_efficiency(),
                    stats.kernel.gst_efficiency(),
                    stats.kernel.warp_execution_efficiency(),
                ))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
