//! Figure 11 bench: window-histogram computation on a sweep graph.

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::experiments::{rmat_sweep_graph, scaled_n};
use cusha_core::windows::WindowHistogram;
use cusha_core::GShards;
use std::hint::black_box;

const SCALE: u64 = 16384;

fn bench(c: &mut Criterion) {
    let g = rmat_sweep_graph(67_000_000, 8_000_000, SCALE);
    let n = scaled_n(3072, SCALE);
    c.bench_function("fig11/gshards_67_8", |b| {
        b.iter(|| black_box(GShards::from_graph(&g, n)))
    });
    let gs = GShards::from_graph(&g, n);
    c.bench_function("fig11/window_histogram_67_8", |b| {
        b.iter(|| black_box(WindowHistogram::of(&gs, 128).mean))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
