//! Figure 10 bench: a run whose H2D/compute/D2H split is the figure's bar.

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 16384;

fn bench(c: &mut Criterion) {
    let g = Dataset::LiveJournal.generate(SCALE);
    c.bench_function("fig10/breakdown_cc_livejournal_cw", |b| {
        b.iter(|| {
            let s = Benchmark::Cc.run(&g, Engine::CuShaCw, 300);
            black_box((s.h2d_seconds, s.compute_seconds, s.d2h_seconds))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
