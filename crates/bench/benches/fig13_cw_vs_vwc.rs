//! Figure 13 bench: CW vs the VWC warp-size sweep on one RMAT graph.

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_algos::Sssp;
use cusha_baselines::{run_vwc, VwcConfig};
use cusha_bench::bench_defs::default_source;
use cusha_bench::experiments::{rmat_sweep_graph, scaled_n};
use cusha_core::{run, CuShaConfig, Repr};
use std::hint::black_box;

const SCALE: u64 = 16384;

fn bench(c: &mut Criterion) {
    let g = rmat_sweep_graph(67_000_000, 8_000_000, SCALE);
    let prog = Sssp::new(default_source(&g));
    c.bench_function("fig13/sssp_67_8/cw", |b| {
        let cfg =
            CuShaConfig::new(Repr::ConcatWindows).with_vertices_per_shard(scaled_n(3072, SCALE));
        b.iter(|| black_box(run(&prog, &g, &cfg).stats.total_ms()))
    });
    for vw in [2usize, 8, 32] {
        c.bench_function(&format!("fig13/sssp_67_8/vwc{vw}"), |b| {
            let cfg = VwcConfig::new(vw);
            b.iter(|| black_box(run_vwc(&prog, &g, &cfg).stats.total_ms()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
