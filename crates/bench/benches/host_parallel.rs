//! Micro-benchmarks of the host-parallel hot paths: coalescing-memo hit
//! vs. miss, a single steady-state kernel launch, and whole fleet runs at
//! 1/2/4 devices (on this host the fleet numbers mostly show the threading
//! overhead — device work is simulated, so the interesting comparison is
//! the per-launch and memo costs).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_algos::PageRank;
use cusha_core::{run_multi, CuShaConfig, MultiConfig};
use cusha_graph::generators::rmat::{rmat, RmatConfig};
use cusha_simt::{warp_chunks, DeviceConfig, Gpu, KernelDesc};
use std::hint::black_box;

/// A CuSha-shaped block body over `n` elements: strided gathers into
/// shared memory, then a coalesced write-back.
fn launch(gpu: &mut Gpu, desc: &KernelDesc, n: usize) -> u64 {
    let src = gpu.upload(&(0..n as u32).collect::<Vec<_>>());
    let mut dst = gpu.alloc::<u32>(n);
    let stats = gpu.launch(desc, |blk| {
        let base = blk.id() as usize * 256;
        let mut local = blk.shared_alloc::<u32>(256);
        for (start, mask) in warp_chunks(256) {
            let vals = blk.gload(&src, mask, |l| (base + start + l * 7) % n);
            blk.sstore(&mut local, mask, |l| start + l, |l| vals[l]);
        }
        blk.sync();
        for (start, mask) in warp_chunks(256) {
            let vals = blk.sload(&local, mask, |l| start + l);
            blk.gstore(&mut dst, mask, |l| base + start + l, |l| vals[l]);
        }
    });
    stats.counters.gld_transactions
}

fn bench(c: &mut Criterion) {
    let n = 1 << 12;
    let desc = KernelDesc::new("hp-probe", 16, 256);

    // Memo miss: a fresh device re-derives every access pattern.
    c.bench_function("host_parallel/memo_miss_launch", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(DeviceConfig::gtx780());
            black_box(launch(&mut gpu, &desc, n))
        })
    });

    // Memo hit: a warmed device replays coalescing analyses from its table.
    let mut warm = Gpu::new(DeviceConfig::gtx780());
    launch(&mut warm, &desc, n);
    c.bench_function("host_parallel/memo_hit_launch", |b| {
        b.iter(|| black_box(launch(&mut warm, &desc, n)))
    });

    // Steady-state single launch: pooled buffers, zero allocations.
    let mut gpu = Gpu::new(DeviceConfig::gtx780());
    let src = gpu.upload(&(0..n as u32).collect::<Vec<_>>());
    let mut dst = gpu.alloc::<u32>(n);
    let mut body = |blk: &mut cusha_simt::Block<'_>| {
        let base = blk.id() as usize * 256;
        for (start, mask) in warp_chunks(256) {
            let vals = blk.gload(&src, mask, |l| (base + start + l * 7) % n);
            blk.gstore(&mut dst, mask, |l| base + start + l, |l| vals[l]);
        }
    };
    gpu.launch(&desc, &mut body);
    c.bench_function("host_parallel/steady_state_launch", |b| {
        b.iter(|| black_box(gpu.launch(&desc, &mut body).counters.gld_transactions))
    });

    // Fleet iteration cost at 1/2/4 devices (fixed iteration count so the
    // three are comparable).
    let g = rmat(&RmatConfig::graph500(11, 60_000, 9));
    let mut base = CuShaConfig::cw();
    base.max_iterations = 4;
    for devices in [1usize, 2, 4] {
        c.bench_function(&format!("host_parallel/fleet_x{devices}"), |b| {
            b.iter(|| {
                black_box(
                    run_multi(
                        &PageRank::new(),
                        &g,
                        &MultiConfig::new(base.clone(), devices),
                    )
                    .stats
                    .iterations,
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
