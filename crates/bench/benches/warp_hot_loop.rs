//! `warp_hot_loop` — the per-iteration cost of the simulator's warp hot
//! loop, isolated: the same CuSha-shaped kernel launched in steady state
//! with the warp-trace replay memo off (every scope re-interpreted — keys
//! hashed, segments sorted, banks scanned) versus on (recorded deltas
//! applied, data still moved). The gap between the two is exactly what the
//! replay memo buys each convergence iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_simt::{warp_chunks, Block, DeviceConfig, Gpu, KernelDesc};
use std::hint::black_box;

const N: usize = 1 << 14;
const BLOCKS: u32 = 16;
const TPB: u32 = 256;

/// A CuSha-shaped body: scoped shared staging plus strided gathers — the
/// access mix of the shard kernels' apply stage.
fn body(blk: &mut Block<'_>, src: &cusha_simt::DevVec<u32>, dst: &mut cusha_simt::DevVec<u32>) {
    let base = blk.id() as usize * TPB as usize;
    let mut local = blk.shared_alloc::<u32>(TPB as usize);
    for (start, mask) in warp_chunks(TPB as usize) {
        blk.warp_scope(
            &[0x7768_4c4f4f50, blk.id() as u64, start as u64, 0],
            mask,
            &[0u32; 32],
        );
        let stage = blk.gload_run(src, mask, (base + start) as isize);
        blk.sstore_run(&mut local, mask, start as isize, &stage);
        // A strided (partially-coalesced) gather: the pattern the analytic
        // model actually has to work for.
        let gathered = blk.gload(src, mask, |l| (base + start + l * 7) % N);
        blk.exec(mask, 2);
        blk.sstore(&mut local, mask, |l| start + l, |l| stage[l] ^ gathered[l]);
        blk.warp_scope_end();
    }
    blk.sync();
    for (start, mask) in warp_chunks(TPB as usize) {
        let vals = blk.sload_run(&local, mask, start as isize);
        blk.gstore_run(dst, mask, (base + start) as isize, &vals);
    }
}

fn warm_device(replay: bool) -> (Gpu, cusha_simt::DevVec<u32>, cusha_simt::DevVec<u32>) {
    let mut cfg = DeviceConfig::gtx780();
    cfg.replay_memo = replay;
    let mut gpu = Gpu::new(cfg);
    let src = gpu.upload(&(0..N as u32).collect::<Vec<_>>());
    let mut dst = gpu.alloc::<u32>(N);
    let desc = KernelDesc::new("warp-hot-loop", BLOCKS, TPB);
    // Warm-up fills the scratch pools and (when enabled) the replay table,
    // so the timed region is pure steady state.
    for _ in 0..3 {
        gpu.launch(&desc, |blk| body(blk, &src, &mut dst));
    }
    (gpu, src, dst)
}

fn bench(c: &mut Criterion) {
    let desc = KernelDesc::new("warp-hot-loop", BLOCKS, TPB);

    let (mut gpu, src, mut dst) = warm_device(false);
    c.bench_function("warp_hot_loop/interpret", |b| {
        b.iter(|| {
            let stats = gpu.launch(&desc, |blk| body(blk, &src, &mut dst));
            black_box(stats.counters.gld_transactions)
        })
    });
    let (_, m, f) = gpu.replay_stats();
    assert!(m == 0 && f > 0, "interpret arm unexpectedly used the table");

    let (mut gpu, src, mut dst) = warm_device(true);
    c.bench_function("warp_hot_loop/replay", |b| {
        b.iter(|| {
            let stats = gpu.launch(&desc, |blk| body(blk, &src, &mut dst));
            black_box(stats.counters.gld_transactions)
        })
    });
    let (h, _, _) = gpu.replay_stats();
    assert!(h > 0, "replay arm never hit the table");
}

criterion_group!(benches, bench);
criterion_main!(benches);
