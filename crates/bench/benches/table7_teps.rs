//! Table 7 bench: the full BFS traversal whose edges/second is TEPS.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 4096;

fn bench(c: &mut Criterion) {
    let g = Dataset::HiggsTwitter.generate(SCALE);
    let mut group = c.benchmark_group("table7");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    for (name, e) in [
        ("bfs_higgs/cusha_cw", Engine::CuShaCw),
        ("bfs_higgs/cusha_gs", Engine::CuShaGs),
        ("bfs_higgs/vwc16", Engine::Vwc(16)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(Benchmark::Bfs.run(&g, e, 300)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
