//! Table 6 bench: the MTCPU-CSR baseline at several thread counts against
//! CuSha-CW on the same cell (Table 6's speedup numerator/denominator).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 4096;

fn bench(c: &mut Criterion) {
    let g = Dataset::Amazon0312.generate(SCALE);
    for t in [1usize, 4] {
        c.bench_function(&format!("table6/bfs_amazon/mtcpu{t}"), |b| {
            b.iter(|| black_box(Benchmark::Bfs.run(&g, Engine::Mtcpu(t), 300)))
        });
    }
    c.bench_function("table6/bfs_amazon/cusha_cw", |b| {
        b.iter(|| black_box(Benchmark::Bfs.run(&g, Engine::CuShaCw, 300)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
