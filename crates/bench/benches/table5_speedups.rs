//! Table 5 bench: measures the CuSha-vs-VWC pair on one cell and reports
//! both runtimes (the speedup ratio is Table 5's content).

use criterion::{criterion_group, criterion_main, Criterion};
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;
use std::hint::black_box;

const SCALE: u64 = 4096;

fn bench(c: &mut Criterion) {
    let g = Dataset::Pokec.generate(SCALE);
    for (name, e) in [
        ("cusha_gs", Engine::CuShaGs),
        ("cusha_cw", Engine::CuShaCw),
        ("vwc2", Engine::Vwc(2)),
        ("vwc32", Engine::Vwc(32)),
    ] {
        c.bench_function(&format!("table5/pr_pokec/{name}"), |b| {
            b.iter(|| black_box(Benchmark::Pr.run(&g, e, 200)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
