//! Loops the simwall cell set for profiling; not part of any artifact.
use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_bench::matrix::run_cell;
use cusha_graph::surrogates::Dataset;

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let graphs: Vec<_> = [Dataset::Amazon0312, Dataset::WebGoogle]
        .iter()
        .map(|&ds| (ds, ds.generate(256)))
        .collect();
    let t = std::time::Instant::now();
    for _ in 0..reps {
        for (ds, g) in &graphs {
            for b in [Benchmark::Bfs, Benchmark::Sssp] {
                for e in [Engine::CuShaGs, Engine::CuShaCw, Engine::Vwc(32)] {
                    std::hint::black_box(run_cell(g, *ds, b, e, 300));
                }
            }
        }
    }
    println!("{:.4}s / rep", t.elapsed().as_secs_f64() / reps as f64);
}
