//! Prints per-cell memo hit/miss telemetry for the simwall subset —
//! a quick way to confirm the replay fast path engages on real workloads.

use cusha_bench::bench_defs::{Benchmark, Engine};
use cusha_graph::surrogates::Dataset;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let max_iterations: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    for ds in [Dataset::Amazon0312, Dataset::WebGoogle] {
        let g = ds.generate(scale);
        for b in [Benchmark::Bfs, Benchmark::Sssp] {
            for e in [Engine::CuShaGs, Engine::CuShaCw, Engine::Vwc(32)] {
                let t = std::time::Instant::now();
                let stats = b.run(&g, e, max_iterations);
                let m = stats.memo;
                println!(
                    "{ds:<12} {b:<5} {:<10} {:>7.3}s iters {:>3} | coalesce {}/{} | replay {}/{}/{}",
                    e.label(),
                    t.elapsed().as_secs_f64(),
                    stats.iterations,
                    m.coalesce_hits,
                    m.coalesce_misses,
                    m.replay_hits,
                    m.replay_misses,
                    m.replay_fallbacks,
                );
            }
        }
    }
}
