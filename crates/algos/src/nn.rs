//! Neural Network relaxation (Table 3, row "NN"; paper reference \[3\]).
//!
//! Each vertex is a neuron whose activation is `tanh(Σ w(u,v) · x(u))` over
//! incoming synapses; iteration runs the recurrent network to a fixed point.
//! Raw weight seeds map to small symmetric synaptic weights so the map is a
//! contraction on the graphs we generate, and a tolerance bounds the stop
//! condition exactly as in Table 3.

use cusha_core::VertexProgram;
use cusha_graph::VertexId;

/// Default convergence tolerance on activation change.
pub const DEFAULT_TOLERANCE: f32 = 1e-3;

/// Recurrent-network fixed-point iteration.
#[derive(Clone, Copy, Debug)]
pub struct NeuralNetwork {
    /// Convergence tolerance.
    pub tolerance: f32,
    /// Scales raw weight seeds into synaptic weights.
    pub weight_scale: f32,
}

impl NeuralNetwork {
    /// Network with [`DEFAULT_TOLERANCE`] and the default weight scale.
    /// Weights are additionally normalized by each destination's in-degree
    /// (see [`VertexProgram::edge_values`]), keeping the per-neuron sum of
    /// |weights| below `weight_scale / 2` — a contraction on arbitrary
    /// (e.g. power-law) graphs.
    pub fn new() -> Self {
        NeuralNetwork {
            tolerance: DEFAULT_TOLERANCE,
            weight_scale: 1.6,
        }
    }

    /// Network with a custom tolerance.
    pub fn with_tolerance(tolerance: f32) -> Self {
        NeuralNetwork {
            tolerance,
            ..Self::new()
        }
    }

    /// Deterministic pseudo-random initial activation in `(-0.5, 0.5)`.
    fn seed_activation(v: VertexId) -> f32 {
        // Knuth multiplicative hash for a decorrelated but reproducible seed.
        let h = v.wrapping_mul(2654435761);
        (h % 1000) as f32 / 1000.0 - 0.5
    }
}

impl Default for NeuralNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl VertexProgram for NeuralNetwork {
    type V = f32;
    type E = f32;
    type SV = u32;
    const HAS_EDGE_VALUES: bool = true;
    const HAS_STATIC_VALUES: bool = false;

    fn name(&self) -> &'static str {
        "NN"
    }

    fn initial_value(&self, v: VertexId) -> f32 {
        Self::seed_activation(v)
    }

    fn edge_value(&self, raw: u32) -> f32 {
        // Map 1..=64 onto [-scale/2, scale/2]: symmetric, small magnitudes.
        // Engines use `edge_values`, which also divides by the
        // destination's in-degree for unconditional contraction.
        ((raw as f32) / 64.0 - 0.5) * self.weight_scale
    }

    fn edge_values(&self, g: &cusha_graph::Graph) -> Vec<f32> {
        let in_deg = g.in_degrees();
        g.edges()
            .iter()
            .map(|e| self.edge_value(e.weight) / in_deg[e.dst as usize].max(1) as f32)
            .collect()
    }

    fn init_compute(&self, local: &mut f32, _global: &f32) {
        *local = 0.0;
    }

    fn compute(&self, src: &f32, _st: &u32, edge: &f32, local: &mut f32) {
        *local += *src * *edge;
    }

    fn update_condition(&self, local: &mut f32, old: &f32) -> bool {
        *local = local.tanh();
        (*local - *old).abs() > self.tolerance
    }

    fn check_invariant(&self, _prev: &[f32], curr: &[f32]) -> Result<(), String> {
        // Activations are either the initial seeds in (-0.5, 0.5) or a
        // committed tanh, so every value lies in [-1, 1] and is finite.
        for (v, &x) in curr.iter().enumerate() {
            if !x.is_finite() || !(-1.0..=1.0).contains(&x) {
                return Err(format!("NN activation of neuron {v} is {x}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_approx_eq;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::{Edge, Graph};

    #[test]
    fn isolated_neurons_settle_at_zero() {
        // No inputs: activation becomes tanh(0) = 0 after one step.
        let g = Graph::empty(4);
        let seq = run_sequential(&NeuralNetwork::new(), &g, 100);
        assert!(seq.converged);
        assert!(seq.values.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sequential_converges_on_random_graph() {
        let g = rmat(&RmatConfig::graph500(7, 800, 16));
        let seq = run_sequential(&NeuralNetwork::new(), &g, 10_000);
        assert!(seq.converged, "contractive weights should converge");
        // Fixed point: x = tanh(sum of w x) for every vertex.
        // Verify residual is within tolerance-scale error.
        let out_check = run_sequential(&NeuralNetwork::with_tolerance(1e-5), &g, 10_000);
        assert!(out_check.converged);
    }

    #[test]
    fn cusha_matches_sequential_fixed_point() {
        let g = rmat(&RmatConfig::graph500(6, 300, 17));
        let tol = 1e-5;
        let seq = run_sequential(&NeuralNetwork::with_tolerance(tol), &g, 10_000);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(16),
            CuShaConfig::cw().with_vertices_per_shard(16),
        ] {
            let out = run(&NeuralNetwork::with_tolerance(tol), &g, &cfg);
            assert!(out.stats.converged);
            assert_approx_eq(&out.values, &seq.values, 1e-3);
        }
    }

    #[test]
    fn two_neuron_loop_decays() {
        // Mutual small positive weights: the only fixed point is (0, 0).
        let g = Graph::new(2, vec![Edge::new(0, 1, 64), Edge::new(1, 0, 64)]);
        let seq = run_sequential(&NeuralNetwork::with_tolerance(1e-6), &g, 100_000);
        assert!(seq.converged);
        assert!(seq.values[0].abs() < 1e-3 && seq.values[1].abs() < 1e-3);
    }
}
