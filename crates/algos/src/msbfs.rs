//! Multi-Source BFS (extension beyond the paper's Table 3).
//!
//! Up to 64 sources traverse the graph simultaneously: each vertex carries
//! a bitset of the sources that reach it, folded with bitwise OR — a
//! commutative, associative, idempotent `compute`, so it slots directly
//! into the framework. One MS-BFS run answers 64 reachability queries for
//! the cost of roughly one traversal, a standard trick for
//! all-pairs-ish analytics (betweenness sampling, neighbourhood function
//! estimation).

use cusha_core::VertexProgram;
use cusha_graph::{Graph, VertexId};

/// Concurrent reachability from up to 64 sources.
#[derive(Clone, Debug)]
pub struct MultiSourceBfs {
    sources: Vec<VertexId>,
}

impl MultiSourceBfs {
    /// Traverse from `sources` (at most 64).
    ///
    /// # Panics
    /// Panics if more than 64 sources are given.
    pub fn new(sources: Vec<VertexId>) -> Self {
        assert!(sources.len() <= 64, "at most 64 concurrent sources");
        MultiSourceBfs { sources }
    }

    /// The source owning `bit`.
    pub fn source(&self, bit: usize) -> VertexId {
        self.sources[bit]
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }
}

impl VertexProgram for MultiSourceBfs {
    type V = u64; // bitset: bit i set <=> sources[i] reaches this vertex
    type E = u32;
    type SV = u32;
    const HAS_EDGE_VALUES: bool = false;
    const HAS_STATIC_VALUES: bool = false;
    const COMPUTE_COST: u64 = 1;
    const FRONTIER_SAFE: bool = true; // idempotent bitset-OR fold

    fn name(&self) -> &'static str {
        "MSBFS"
    }

    fn initial_value(&self, v: VertexId) -> u64 {
        self.sources
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == v)
            .fold(0, |acc, (bit, _)| acc | (1 << bit))
    }

    fn edge_value(&self, _raw: u32) -> u32 {
        0
    }

    fn init_compute(&self, local: &mut u64, global: &u64) {
        *local = *global;
    }

    fn compute(&self, src: &u64, _st: &u32, _e: &u32, local: &mut u64) {
        *local |= *src;
    }

    fn update_condition(&self, local: &mut u64, old: &u64) -> bool {
        *local != *old
    }

    fn check_invariant(&self, prev: &[u64], curr: &[u64]) -> Result<(), String> {
        // OR-folding only sets bits, and only bits below the source count
        // exist; a cleared or out-of-range bit is corruption.
        let valid = if self.sources.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.sources.len()) - 1
        };
        for (v, (&p, &c)) in prev.iter().zip(curr).enumerate() {
            if p & !c != 0 {
                return Err(format!(
                    "MSBFS bitset of vertex {v} lost bits {p:#x} -> {c:#x}"
                ));
            }
            if c & !valid != 0 {
                return Err(format!("MSBFS bitset of vertex {v} has ghost bits {c:#x}"));
            }
        }
        Ok(())
    }

    fn seed_frontier(&self, _g: &Graph) -> Option<Vec<VertexId>> {
        let mut s = self.sources.clone();
        s.sort_unstable();
        s.dedup();
        Some(s)
    }
}

/// Oracle: per-source reachability composed into bitsets.
pub fn multi_source_reach(g: &Graph, sources: &[VertexId]) -> Vec<u64> {
    let mut out = vec![0u64; g.num_vertices() as usize];
    for (bit, &s) in sources.iter().enumerate() {
        for (v, reached) in cusha_graph::analysis::reachable_from(g, s)
            .into_iter()
            .enumerate()
        {
            if reached {
                out[v] |= 1 << bit;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::Edge;

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = rmat(&RmatConfig::graph500(8, 1200, 80));
        let sources: Vec<u32> = (0..40).map(|i| i * 6 + 1).collect();
        let prog = MultiSourceBfs::new(sources.clone());
        let oracle = multi_source_reach(&g, &sources);
        let seq = run_sequential(&prog, &g, 1000);
        assert!(seq.converged);
        assert_eq!(seq.values, oracle);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(32),
            CuShaConfig::cw().with_vertices_per_shard(32),
        ] {
            let out = run(&prog, &g, &cfg);
            assert_eq!(out.values, oracle, "{}", out.stats.engine);
        }
    }

    #[test]
    fn bit_zero_matches_single_bfs_reachability() {
        let g = rmat(&RmatConfig::graph500(7, 500, 81));
        let prog = MultiSourceBfs::new(vec![3, 99]);
        let out = run(&prog, &g, &CuShaConfig::cw().with_vertices_per_shard(16));
        let bfs = crate::bfs::bfs_levels(&g, 3);
        for (v, &level) in bfs.iter().enumerate() {
            assert_eq!(out.values[v] & 1 != 0, level != u32::MAX, "vertex {v}");
        }
    }

    #[test]
    fn disjoint_components_stay_disjoint() {
        // Two disconnected cliques; sources in each never cross.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push(Edge::new(a, b, 1));
                    edges.push(Edge::new(a + 4, b + 4, 1));
                }
            }
        }
        let g = Graph::new(8, edges);
        let prog = MultiSourceBfs::new(vec![0, 5]);
        let out = run(&prog, &g, &CuShaConfig::gs().with_vertices_per_shard(4));
        for v in 0..4 {
            assert_eq!(out.values[v], 0b01);
        }
        for v in 4..8 {
            assert_eq!(out.values[v], 0b10);
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_sources_rejected() {
        MultiSourceBfs::new((0..65).collect());
    }

    #[test]
    fn empty_source_set_is_a_noop() {
        let g = rmat(&RmatConfig::graph500(6, 200, 82));
        let prog = MultiSourceBfs::new(vec![]);
        let out = run(&prog, &g, &CuShaConfig::cw().with_vertices_per_shard(16));
        assert!(out.values.iter().all(|&v| v == 0));
        assert_eq!(out.stats.iterations, 1);
    }
}
