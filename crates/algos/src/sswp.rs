//! Single-Source Widest Path (Table 3, row "SSWP").
//!
//! The bottleneck-bandwidth problem: `width(v) = max over in-edges (u, v)
//! of min(width(u), capacity(u, v))`, with the source at infinite width.

use crate::INF;
use cusha_core::VertexProgram;
use cusha_graph::{Graph, VertexId};

/// Widest path from a single source over positive integer capacities.
#[derive(Clone, Copy, Debug)]
pub struct Sswp {
    source: VertexId,
}

impl Sswp {
    /// Widest paths from `source`.
    pub fn new(source: VertexId) -> Self {
        Sswp { source }
    }
}

impl VertexProgram for Sswp {
    type V = u32;
    type E = u32;
    type SV = u32;
    const HAS_EDGE_VALUES: bool = true;
    const HAS_STATIC_VALUES: bool = false;
    const FRONTIER_SAFE: bool = true; // idempotent max-of-min-capacity fold

    fn name(&self) -> &'static str {
        "SSWP"
    }

    fn initial_value(&self, v: VertexId) -> u32 {
        if v == self.source {
            INF
        } else {
            0
        }
    }

    fn edge_value(&self, raw: u32) -> u32 {
        raw.max(1) // capacities are positive
    }

    fn init_compute(&self, local: &mut u32, global: &u32) {
        *local = *global;
    }

    fn compute(&self, src: &u32, _st: &u32, edge: &u32, local: &mut u32) {
        if *src != 0 {
            *local = (*local).max((*src).min(*edge));
        }
    }

    fn update_condition(&self, local: &mut u32, old: &u32) -> bool {
        *local > *old
    }

    fn check_invariant(&self, prev: &[u32], curr: &[u32]) -> Result<(), String> {
        // Max-min folding only widens paths; the source is pinned at INF.
        if curr[self.source as usize] != INF {
            return Err(format!(
                "SSWP source {} left width INF (now {})",
                self.source, curr[self.source as usize]
            ));
        }
        for (v, (&p, &c)) in prev.iter().zip(curr).enumerate() {
            if c < p {
                return Err(format!("SSWP width of vertex {v} shrank {p} -> {c}"));
            }
        }
        Ok(())
    }

    fn seed_frontier(&self, _g: &Graph) -> Option<Vec<VertexId>> {
        Some(vec![self.source])
    }
}

/// Independent oracle: max-min Dijkstra (widest-path first) over the
/// out-adjacency.
pub fn widest_paths(g: &cusha_graph::Graph, source: VertexId) -> Vec<u32> {
    use std::collections::BinaryHeap;
    let n = g.num_vertices() as usize;
    let mut offsets = vec![0u32; n + 1];
    for e in g.edges() {
        offsets[e.src as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut adj = vec![(0u32, 0u32); g.num_edges() as usize];
    let mut cursor = offsets.clone();
    for e in g.edges() {
        adj[cursor[e.src as usize] as usize] = (e.dst, e.weight.max(1));
        cursor[e.src as usize] += 1;
    }
    let mut width = vec![0u32; n];
    if n == 0 {
        return width;
    }
    width[source as usize] = INF;
    let mut heap = BinaryHeap::from([(INF, source)]);
    while let Some((w, v)) = heap.pop() {
        if w < width[v as usize] {
            continue;
        }
        for i in offsets[v as usize]..offsets[v as usize + 1] {
            let (u, cap) = adj[i as usize];
            let nw = w.min(cap);
            if nw > width[u as usize] {
                width[u as usize] = nw;
                heap.push((nw, u));
            }
        }
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::{Edge, Graph};

    #[test]
    fn oracle_takes_the_wider_route() {
        // 0 -> 1 direct capacity 3; 0 -> 2 -> 1 capacities 10, 7: width 7.
        let g = Graph::new(
            3,
            vec![Edge::new(0, 1, 3), Edge::new(0, 2, 10), Edge::new(2, 1, 7)],
        );
        assert_eq!(widest_paths(&g, 0), vec![INF, 7, 10]);
    }

    #[test]
    fn sequential_matches_oracle() {
        let g = rmat(&RmatConfig::graph500(7, 700, 14));
        let seq = run_sequential(&Sswp::new(0), &g, 1000);
        assert!(seq.converged);
        assert_eq!(seq.values, widest_paths(&g, 0));
    }

    #[test]
    fn cusha_matches_oracle() {
        let g = rmat(&RmatConfig::graph500(7, 700, 15));
        let oracle = widest_paths(&g, 0);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(32),
            CuShaConfig::cw().with_vertices_per_shard(32),
        ] {
            let out = run(&Sswp::new(0), &g, &cfg);
            assert_eq!(out.values, oracle, "{}", out.stats.engine);
        }
    }

    #[test]
    fn unreachable_vertices_have_zero_width() {
        let g = Graph::new(3, vec![Edge::new(0, 1, 4)]);
        let seq = run_sequential(&Sswp::new(0), &g, 100);
        assert_eq!(seq.values, vec![INF, 4, 0]);
    }
}
