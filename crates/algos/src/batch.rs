//! Generic traversal batching: fused multi-query launches for the service.
//!
//! [`MultiSourceBfs`](crate::MultiSourceBfs) packs up to 64 *reachability*
//! queries into one `u64` bitset per vertex. This module generalizes the
//! trick to the *valued* single-source traversals — BFS levels, SSSP
//! distances, SSWP widths — whose per-vertex answer is a full `u32`, not a
//! bit. The framework caps vertex values at 64 bits (see
//! [`cusha_core::Value`]), so the fusion factor is two: a [`FusedPair`]
//! runs two independent queries of the same [`TraversalKind`] in the two
//! `u32` lanes of a `(u32, u32)` value, in one launch sequence over one
//! shard layout.
//!
//! **Bit-identity guarantee.** Each lane applies *exactly* the arithmetic
//! of its single-source program ([`Bfs`](crate::Bfs), [`Sssp`](crate::Sssp),
//! [`Sswp`](crate::Sswp)): the same guard, the same fold, the same
//! improvement predicate, lane-wise and independently. All three are
//! monotone semilattice folds, so each lane converges to its unique fixed
//! point regardless of how many extra iterations its batch-mate keeps the
//! launch loop alive — the fused run's final lane values are bit-identical
//! to the serial runs'. (Iteration counts and modeled times differ: a fused
//! launch runs until *both* lanes settle.)
//!
//! A lane may also be *idle* (no source): its lattice bottom is everywhere,
//! the compute guard never fires, and the lane stays inert for free —
//! that's how an odd query count rides in a pair. [`plan_pairs`] chunks a
//! source list into this shape.

use crate::INF;
use cusha_core::VertexProgram;
use cusha_graph::VertexId;

/// Which valued single-source traversal a fused lane runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraversalKind {
    /// Breadth-first levels (`min`-fold of `src + 1`).
    Bfs,
    /// Shortest distances (`min`-fold of `src + w`).
    Sssp,
    /// Widest paths (`max`-fold of `min(src, w)`).
    Sswp,
}

impl TraversalKind {
    /// Lower-case wire label ("bfs" / "sssp" / "sswp").
    pub fn label(self) -> &'static str {
        match self {
            TraversalKind::Bfs => "bfs",
            TraversalKind::Sssp => "sssp",
            TraversalKind::Sswp => "sswp",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "bfs" => Some(TraversalKind::Bfs),
            "sssp" => Some(TraversalKind::Sssp),
            "sswp" => Some(TraversalKind::Sswp),
            _ => None,
        }
    }

    /// The value a source vertex starts at.
    fn source_value(self) -> u32 {
        match self {
            TraversalKind::Bfs | TraversalKind::Sssp => 0,
            TraversalKind::Sswp => INF,
        }
    }

    /// The lattice bottom every other vertex starts at (and an idle lane
    /// keeps everywhere: the compute guard below never fires on it).
    fn bottom(self) -> u32 {
        match self {
            TraversalKind::Bfs | TraversalKind::Sssp => INF,
            TraversalKind::Sswp => 0,
        }
    }

    /// One lane of stage 2: the exact fold of the corresponding
    /// single-source program.
    fn fold(self, src: u32, edge: u32, local: &mut u32) {
        match self {
            TraversalKind::Bfs => {
                if src != INF {
                    *local = (*local).min(src + 1);
                }
            }
            TraversalKind::Sssp => {
                if src != INF {
                    *local = (*local).min(src.saturating_add(edge));
                }
            }
            TraversalKind::Sswp => {
                if src != 0 {
                    *local = (*local).max(src.min(edge));
                }
            }
        }
    }

    /// One lane of stage 3: the exact improvement predicate of the
    /// corresponding single-source program.
    fn improved(self, local: u32, old: u32) -> bool {
        match self {
            TraversalKind::Bfs | TraversalKind::Sssp => local < old,
            TraversalKind::Sswp => local > old,
        }
    }

    /// The typed edge value of the corresponding single-source program.
    fn lane_edge_value(self, raw: u32) -> u32 {
        match self {
            TraversalKind::Bfs => 0,
            TraversalKind::Sssp => raw,
            TraversalKind::Sswp => raw.max(1),
        }
    }
}

/// Two same-kind single-source traversals fused into one launch over
/// `(u32, u32)` lane-pair values.
///
/// Lane `i` runs from `sources[i]`; a `None` lane is idle (see module
/// docs). Extract per-query answers from the fused output with
/// [`extract_lane`].
#[derive(Clone, Copy, Debug)]
pub struct FusedPair {
    kind: TraversalKind,
    sources: [Option<VertexId>; 2],
}

impl FusedPair {
    /// Fuses traversals of `kind` from up to two sources.
    pub fn new(kind: TraversalKind, sources: [Option<VertexId>; 2]) -> Self {
        FusedPair { kind, sources }
    }

    /// The traversal kind both lanes run.
    pub fn kind(&self) -> TraversalKind {
        self.kind
    }

    /// The source of lane `lane` (`None` = idle lane).
    pub fn source(&self, lane: usize) -> Option<VertexId> {
        self.sources[lane]
    }

    /// Number of live (non-idle) lanes.
    pub fn width(&self) -> usize {
        self.sources.iter().filter(|s| s.is_some()).count()
    }

    fn lane_initial(&self, lane: usize, v: VertexId) -> u32 {
        if self.sources[lane] == Some(v) {
            self.kind.source_value()
        } else {
            self.kind.bottom()
        }
    }
}

impl VertexProgram for FusedPair {
    type V = (u32, u32);
    type E = u32;
    type SV = u32;
    // BFS lanes ignore the edge array; carrying it anyway only changes
    // modeled traffic, never values, and keeps one code path for all kinds.
    const HAS_EDGE_VALUES: bool = true;
    const HAS_STATIC_VALUES: bool = false;
    const COMPUTE_COST: u64 = 4; // two lanes of the usual 2-op fold

    fn name(&self) -> &'static str {
        // Distinct from the singleton names so a fault plan can poison
        // fused launches specifically (and vice versa) by kernel name.
        match self.kind {
            TraversalKind::Bfs => "BFSx2",
            TraversalKind::Sssp => "SSSPx2",
            TraversalKind::Sswp => "SSWPx2",
        }
    }

    fn initial_value(&self, v: VertexId) -> (u32, u32) {
        (self.lane_initial(0, v), self.lane_initial(1, v))
    }

    fn edge_value(&self, raw: u32) -> u32 {
        // Lanes share the kind, so they share the edge transform.
        self.kind.lane_edge_value(raw)
    }

    fn init_compute(&self, local: &mut (u32, u32), global: &(u32, u32)) {
        *local = *global;
    }

    fn compute(&self, src: &(u32, u32), _st: &u32, edge: &u32, local: &mut (u32, u32)) {
        self.kind.fold(src.0, *edge, &mut local.0);
        self.kind.fold(src.1, *edge, &mut local.1);
    }

    fn update_condition(&self, local: &mut (u32, u32), old: &(u32, u32)) -> bool {
        // Publish when either lane improved. The untouched lane republishes
        // its old value, which is a no-op for batch-mates' convergence.
        self.kind.improved(local.0, old.0) || self.kind.improved(local.1, old.1)
    }

    fn check_invariant(&self, prev: &[(u32, u32)], curr: &[(u32, u32)]) -> Result<(), String> {
        for lane in 0..2 {
            if let Some(s) = self.sources[lane] {
                let v = if lane == 0 {
                    curr[s as usize].0
                } else {
                    curr[s as usize].1
                };
                if v != self.kind.source_value() {
                    return Err(format!(
                        "{} lane {lane} source {s} left its pinned value (now {v})",
                        self.name()
                    ));
                }
            }
        }
        for (v, (&p, &c)) in prev.iter().zip(curr).enumerate() {
            for (lane, (pl, cl)) in [(p.0, c.0), (p.1, c.1)].into_iter().enumerate() {
                // Monotone lattice folds never regress toward bottom.
                if self.kind.improved(pl, cl) {
                    return Err(format!(
                        "{} lane {lane} of vertex {v} regressed {pl} -> {cl}",
                        self.name()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Splits one lane out of a fused output: `extract_lane(&out.values, 0)`
/// is bit-identical to the lane's single-source run.
pub fn extract_lane(values: &[(u32, u32)], lane: usize) -> Vec<u32> {
    assert!(lane < 2, "FusedPair has two lanes");
    values
        .iter()
        .map(|&(a, b)| if lane == 0 { a } else { b })
        .collect()
}

/// Chunks `sources` into the fused pairs that cover them: `2n` sources
/// become `n` full pairs, a trailing odd source rides with an idle lane.
pub fn plan_pairs(kind: TraversalKind, sources: &[VertexId]) -> Vec<FusedPair> {
    sources
        .chunks(2)
        .map(|c| FusedPair::new(kind, [Some(c[0]), c.get(1).copied()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bfs, Sssp, Sswp};
    use cusha_core::{run, try_run, CuShaConfig};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};

    fn fused_matches_serial(kind: TraversalKind, seed: u64) {
        let g = rmat(&RmatConfig::graph500(7, 700, seed));
        let cfg = CuShaConfig::cw().with_vertices_per_shard(32);
        let (s0, s1) = (0u32, 17u32);
        let fused = run(&FusedPair::new(kind, [Some(s0), Some(s1)]), &g, &cfg);
        let serial0 = match kind {
            TraversalKind::Bfs => run(&Bfs::new(s0), &g, &cfg).values,
            TraversalKind::Sssp => run(&Sssp::new(s0), &g, &cfg).values,
            TraversalKind::Sswp => run(&Sswp::new(s0), &g, &cfg).values,
        };
        let serial1 = match kind {
            TraversalKind::Bfs => run(&Bfs::new(s1), &g, &cfg).values,
            TraversalKind::Sssp => run(&Sssp::new(s1), &g, &cfg).values,
            TraversalKind::Sswp => run(&Sswp::new(s1), &g, &cfg).values,
        };
        assert_eq!(extract_lane(&fused.values, 0), serial0, "{kind:?} lane 0");
        assert_eq!(extract_lane(&fused.values, 1), serial1, "{kind:?} lane 1");
    }

    #[test]
    fn fused_bfs_matches_serial() {
        fused_matches_serial(TraversalKind::Bfs, 21);
    }

    #[test]
    fn fused_sssp_matches_serial() {
        fused_matches_serial(TraversalKind::Sssp, 22);
    }

    #[test]
    fn fused_sswp_matches_serial() {
        fused_matches_serial(TraversalKind::Sswp, 23);
    }

    #[test]
    fn idle_lane_stays_at_bottom() {
        let g = rmat(&RmatConfig::graph500(6, 300, 24));
        let cfg = CuShaConfig::gs().with_vertices_per_shard(16);
        for kind in [TraversalKind::Bfs, TraversalKind::Sssp, TraversalKind::Sswp] {
            let out = run(&FusedPair::new(kind, [Some(2), None]), &g, &cfg);
            let bottom = kind.bottom();
            assert!(
                extract_lane(&out.values, 1).iter().all(|&v| v == bottom),
                "{kind:?} idle lane moved"
            );
        }
    }

    #[test]
    fn plan_pairs_covers_all_sources() {
        let pairs = plan_pairs(TraversalKind::Sssp, &[4, 8, 15]);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].source(0), Some(4));
        assert_eq!(pairs[0].source(1), Some(8));
        assert_eq!(pairs[1].source(0), Some(15));
        assert_eq!(pairs[1].source(1), None);
        assert_eq!(pairs[0].width(), 2);
        assert_eq!(pairs[1].width(), 1);
    }

    #[test]
    fn fused_kernel_name_is_distinct() {
        let g = rmat(&RmatConfig::graph500(6, 300, 25));
        let cfg = CuShaConfig::cw()
            .with_vertices_per_shard(16)
            .with_fault_plan(
                cusha_simt::FaultPlan::seeded(7).fail_kernels_named("BFSx2", u64::MAX),
            );
        // The fused launch is poisoned by name...
        let fused = try_run(
            &FusedPair::new(TraversalKind::Bfs, [Some(0), Some(1)]),
            &g,
            &cfg,
        );
        assert!(fused.is_err());
        // ...while the singleton under the same plan is untouched.
        let single = try_run(&Bfs::new(0), &g, &cfg);
        assert!(single.is_ok());
    }

    #[test]
    fn labels_round_trip() {
        for kind in [TraversalKind::Bfs, TraversalKind::Sssp, TraversalKind::Sswp] {
            assert_eq!(TraversalKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(TraversalKind::parse("pagerank"), None);
    }
}
