//! PageRank (Table 3, row "PR").
//!
//! The only benchmark using a `StaticVertex`: each entry carries the source
//! vertex's out-degree (`NbrsNum`). `compute` accumulates
//! `rank(src) / out_degree(src)` into a zero-initialized local; the damping
//! `rank = (1 - d) + d * sum` happens in `update_condition` — the paper's
//! example of splitting edge-parallel and vertex-parallel logic between the
//! two hooks.

use cusha_core::VertexProgram;
use cusha_graph::{Graph, VertexId};

/// Damping factor `d` (the paper's `DAMPING_FACTOR`).
pub const DAMPING: f32 = 0.85;
/// Default convergence tolerance on per-vertex rank change.
pub const DEFAULT_TOLERANCE: f32 = 1e-3;

/// PageRank with configurable tolerance.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Convergence tolerance.
    pub tolerance: f32,
}

impl PageRank {
    /// PageRank with [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        PageRank {
            tolerance: DEFAULT_TOLERANCE,
        }
    }

    /// PageRank with a custom tolerance.
    pub fn with_tolerance(tolerance: f32) -> Self {
        PageRank { tolerance }
    }
}

impl Default for PageRank {
    fn default() -> Self {
        Self::new()
    }
}

impl VertexProgram for PageRank {
    type V = f32;
    type E = u32;
    type SV = u32;
    const HAS_EDGE_VALUES: bool = false;
    const HAS_STATIC_VALUES: bool = true;
    const COMPUTE_COST: u64 = 3; // divide + add + guard

    fn name(&self) -> &'static str {
        "PR"
    }

    fn initial_value(&self, _v: VertexId) -> f32 {
        1.0
    }

    fn static_values(&self, g: &Graph) -> Vec<u32> {
        g.out_degrees()
    }

    fn edge_value(&self, _raw: u32) -> u32 {
        0
    }

    fn init_compute(&self, local: &mut f32, _global: &f32) {
        *local = 0.0;
    }

    fn compute(&self, src: &f32, src_static: &u32, _e: &u32, local: &mut f32) {
        let nbrs = *src_static;
        if nbrs != 0 {
            *local += *src / nbrs as f32;
        }
    }

    fn update_condition(&self, local: &mut f32, old: &f32) -> bool {
        *local = (1.0 - DAMPING) + *local * DAMPING;
        (*local - *old).abs() > self.tolerance
    }

    fn check_invariant(&self, _prev: &[f32], curr: &[f32]) -> Result<(), String> {
        // Every committed rank is `(1-d) + d * sum` with `sum >= 0` (or the
        // untouched initial 1.0), so ranks are finite and never drop below
        // the teleport mass. No sound upper bound exists mid-run: under
        // asynchronous updates mass legitimately concentrates before it
        // redistributes, so overshoot is left to the checksum layer.
        let floor = (1.0 - DAMPING) - 1e-4;
        for (v, &r) in curr.iter().enumerate() {
            if !r.is_finite() || r < floor {
                return Err(format!("PR rank of vertex {v} is {r}"));
            }
        }
        Ok(())
    }
}

/// Independent oracle: dense synchronous power iteration (Jacobi), in `f64`
/// for accumulated precision, to `iters` rounds or until max change < tol.
pub fn pagerank_power_iteration(g: &Graph, tol: f64, max_iters: u32) -> Vec<f32> {
    let n = g.num_vertices() as usize;
    let out = g.out_degrees();
    let mut rank = vec![1.0f64; n];
    for _ in 0..max_iters {
        let mut next = vec![0.0f64; n];
        for e in g.edges() {
            let d = out[e.src as usize];
            if d != 0 {
                next[e.dst as usize] += rank[e.src as usize] / d as f64;
            }
        }
        let mut max_delta = 0.0f64;
        for v in 0..n {
            let nv = (1.0 - DAMPING as f64) + DAMPING as f64 * next[v];
            max_delta = max_delta.max((nv - rank[v]).abs());
            rank[v] = nv;
        }
        if max_delta < tol {
            break;
        }
    }
    rank.into_iter().map(|r| r as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_approx_eq;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::{Edge, Graph};

    #[test]
    fn two_node_cycle_has_uniform_rank() {
        let g = Graph::new(2, vec![Edge::new(0, 1, 1), Edge::new(1, 0, 1)]);
        let pr = pagerank_power_iteration(&g, 1e-10, 10_000);
        assert!((pr[0] - 1.0).abs() < 1e-5 && (pr[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sink_receiving_everything_ranks_highest() {
        // Star into vertex 0.
        let g = Graph::new(5, (1..5).map(|v| Edge::new(v, 0, 1)).collect());
        let pr = pagerank_power_iteration(&g, 1e-10, 10_000);
        assert!(pr[0] > pr[1]);
        // Leaves get the teleport mass only.
        assert!((pr[1] - (1.0 - DAMPING)).abs() < 1e-4);
    }

    #[test]
    fn sequential_matches_power_iteration() {
        let g = rmat(&RmatConfig::graph500(7, 700, 10));
        let seq = run_sequential(&PageRank::with_tolerance(1e-5), &g, 10_000);
        assert!(seq.converged);
        let oracle = pagerank_power_iteration(&g, 1e-9, 100_000);
        assert_approx_eq(&seq.values, &oracle, 1e-3);
    }

    #[test]
    fn cusha_matches_power_iteration() {
        let g = rmat(&RmatConfig::graph500(7, 600, 11));
        let oracle = pagerank_power_iteration(&g, 1e-9, 100_000);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(32),
            CuShaConfig::cw().with_vertices_per_shard(32),
        ] {
            let out = run(&PageRank::with_tolerance(1e-5), &g, &cfg);
            assert!(out.stats.converged);
            assert_approx_eq(&out.values, &oracle, 2e-3);
        }
    }

    #[test]
    fn zero_out_degree_sources_contribute_nothing() {
        // Vertex 1 has no out-edges; compute's guard must skip it.
        let g = Graph::new(2, vec![Edge::new(0, 1, 1)]);
        let seq = run_sequential(&PageRank::new(), &g, 1000);
        assert!(seq.converged);
        assert!((seq.values[0] - (1.0 - DAMPING)).abs() < 1e-5);
    }
}
