//! Circuit Simulation (Table 3, row "CS").
//!
//! Resistive-network node-voltage relaxation. Vertex state is
//! `(V, GsumOrA)`: for **anchor** nodes (voltage sources / ground) the
//! second field is a nonzero flag and `V` is pinned; for free nodes
//! `compute` accumulates `Σ G·V(src)` into `V` and `Σ G` into `GsumOrA`,
//! and `update_condition` divides to get the conductance-weighted average
//! of the neighbours — Jacobi relaxation toward the harmonic (Kirchhoff)
//! voltage solution. The control flow is a faithful transcription of the
//! Table 3 cell.

use cusha_core::VertexProgram;
use cusha_graph::VertexId;

/// Default convergence tolerance on voltage change.
pub const DEFAULT_TOLERANCE: f32 = 1e-4;

/// Node-voltage relaxation with two anchor terminals.
#[derive(Clone, Copy, Debug)]
pub struct CircuitSimulation {
    /// Vertex pinned to 1 V.
    pub vdd: VertexId,
    /// Vertex pinned to 0 V.
    pub gnd: VertexId,
    /// Convergence tolerance.
    pub tolerance: f32,
}

impl CircuitSimulation {
    /// 1 V at `vdd`, ground at `gnd`, default tolerance.
    pub fn new(vdd: VertexId, gnd: VertexId) -> Self {
        CircuitSimulation {
            vdd,
            gnd,
            tolerance: DEFAULT_TOLERANCE,
        }
    }
}

impl VertexProgram for CircuitSimulation {
    type V = (f32, f32); // (V, GsumOrA)
    type E = f32; // conductance G
    type SV = u32;
    const HAS_EDGE_VALUES: bool = true;
    const HAS_STATIC_VALUES: bool = false;
    const COMPUTE_COST: u64 = 4;

    fn name(&self) -> &'static str {
        "CS"
    }

    fn initial_value(&self, v: VertexId) -> (f32, f32) {
        if v == self.vdd {
            (1.0, 1.0)
        } else if v == self.gnd {
            (0.0, 1.0)
        } else {
            (0.0, 0.0)
        }
    }

    fn edge_value(&self, raw: u32) -> f32 {
        raw as f32 / 64.0 // conductances in (0, 1]
    }

    fn init_compute(&self, local: &mut (f32, f32), _global: &(f32, f32)) {
        *local = (0.0, 0.0);
    }

    fn compute(&self, src: &(f32, f32), _st: &u32, g: &f32, local: &mut (f32, f32)) {
        local.0 += src.0 * *g;
        local.1 += *g;
    }

    fn update_condition(&self, local: &mut (f32, f32), old: &(f32, f32)) -> bool {
        if old.1 != 0.0 {
            // Anchor: keep the pinned voltage, never signal change.
            local.1 = 1.0;
            local.0 = old.0;
            false
        } else if local.1 != 0.0 {
            local.0 /= local.1;
            local.1 = 0.0;
            (local.0 - old.0).abs() > self.tolerance
        } else {
            false
        }
    }

    fn check_invariant(&self, _prev: &[(f32, f32)], curr: &[(f32, f32)]) -> Result<(), String> {
        // Anchors stay pinned, and every free node's voltage is a
        // conductance-weighted average of its neighbours, so all voltages
        // lie between ground (0 V) and the supply (1 V).
        if curr[self.vdd as usize] != (1.0, 1.0) {
            return Err(format!("CS vdd node {} left 1 V", self.vdd));
        }
        if curr[self.gnd as usize] != (0.0, 1.0) {
            return Err(format!("CS gnd node {} left 0 V", self.gnd));
        }
        for (v, &(volt, flag)) in curr.iter().enumerate() {
            if !volt.is_finite() || !(0.0..=1.0).contains(&volt) || !(flag == 0.0 || flag == 1.0) {
                return Err(format!("CS state of node {v} is ({volt}, {flag})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::{Edge, Graph};

    /// A chain vdd - a - b - gnd of equal resistors (bidirectional edges).
    fn resistor_chain() -> Graph {
        let mut edges = Vec::new();
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3)] {
            edges.push(Edge::new(u, v, 64));
            edges.push(Edge::new(v, u, 64));
        }
        Graph::new(4, edges)
    }

    #[test]
    fn voltage_divider_splits_evenly() {
        let g = resistor_chain();
        let cs = CircuitSimulation::new(0, 3);
        let seq = run_sequential(&cs, &g, 100_000);
        assert!(seq.converged);
        assert!((seq.values[0].0 - 1.0).abs() < 1e-6, "vdd pinned");
        assert!((seq.values[3].0 - 0.0).abs() < 1e-6, "gnd pinned");
        assert!(
            (seq.values[1].0 - 2.0 / 3.0).abs() < 5e-3,
            "got {}",
            seq.values[1].0
        );
        assert!(
            (seq.values[2].0 - 1.0 / 3.0).abs() < 5e-3,
            "got {}",
            seq.values[2].0
        );
    }

    #[test]
    fn cusha_matches_sequential_voltages() {
        let g = resistor_chain();
        let cs = CircuitSimulation::new(0, 3);
        let seq = run_sequential(&cs, &g, 100_000);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(2),
            CuShaConfig::cw().with_vertices_per_shard(2),
        ] {
            let out = run(&cs, &g, &cfg);
            assert!(out.stats.converged);
            let a: Vec<f32> = out.values.iter().map(|v| v.0).collect();
            let b: Vec<f32> = seq.values.iter().map(|v| v.0).collect();
            crate::assert_approx_eq(&a, &b, 1e-2);
        }
    }

    #[test]
    fn unequal_conductances_shift_the_node_voltage() {
        // vdd -(G=1)- node -(G=0.25)- gnd: V(node) = 1*1/(1+0.25) = 0.8.
        let mut edges = Vec::new();
        for (u, v, w) in [(0u32, 1u32, 64), (1, 2, 16)] {
            edges.push(Edge::new(u, v, w));
            edges.push(Edge::new(v, u, w));
        }
        let g = Graph::new(3, edges);
        let cs = CircuitSimulation::new(0, 2);
        let seq = run_sequential(&cs, &g, 100_000);
        assert!(seq.converged);
        assert!(
            (seq.values[1].0 - 0.8).abs() < 5e-3,
            "got {}",
            seq.values[1].0
        );
    }

    #[test]
    fn floating_nodes_stay_at_zero() {
        // A node with no edges never gets a conductance sum: stays (0, 0).
        let g = Graph::new(3, vec![Edge::new(0, 1, 64), Edge::new(1, 0, 64)]);
        let cs = CircuitSimulation::new(0, 1);
        let seq = run_sequential(&cs, &g, 100);
        assert!(seq.converged);
        assert_eq!(seq.values[2], (0.0, 0.0));
    }
}
