//! Single-Source Shortest Path (Table 3, row "SSSP"; also the paper's
//! worked example, Figure 6).
//!
//! Bellman-Ford-style relaxation: `dist(v) = min over in-edges (u, v) of
//! dist(u) + w(u, v)`, applied asynchronously until fixpoint.

use crate::INF;
use cusha_core::VertexProgram;
use cusha_graph::{Graph, VertexId};

/// SSSP from a single source over non-negative integer weights.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    source: VertexId,
}

impl Sssp {
    /// Shortest paths from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type V = u32;
    type E = u32;
    type SV = u32;
    const HAS_EDGE_VALUES: bool = true;
    const HAS_STATIC_VALUES: bool = false;
    const FRONTIER_SAFE: bool = true; // idempotent min-fold over dist + w

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn initial_value(&self, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            INF
        }
    }

    fn edge_value(&self, raw: u32) -> u32 {
        raw
    }

    fn init_compute(&self, local: &mut u32, global: &u32) {
        *local = *global;
    }

    fn compute(&self, src: &u32, _st: &u32, edge: &u32, local: &mut u32) {
        if *src != INF {
            *local = (*local).min(src.saturating_add(*edge));
        }
    }

    fn update_condition(&self, local: &mut u32, old: &u32) -> bool {
        *local < *old
    }

    fn check_invariant(&self, prev: &[u32], curr: &[u32]) -> Result<(), String> {
        // Bellman-Ford relaxation only shortens distances; the source is
        // pinned at 0.
        if curr[self.source as usize] != 0 {
            return Err(format!(
                "SSSP source {} left distance 0 (now {})",
                self.source, curr[self.source as usize]
            ));
        }
        for (v, (&p, &c)) in prev.iter().zip(curr).enumerate() {
            if c > p {
                return Err(format!("SSSP distance of vertex {v} rose {p} -> {c}"));
            }
        }
        Ok(())
    }

    fn seed_frontier(&self, _g: &Graph) -> Option<Vec<VertexId>> {
        Some(vec![self.source])
    }
}

/// Independent oracle: binary-heap Dijkstra over the out-adjacency.
pub fn dijkstra(g: &cusha_graph::Graph, source: VertexId) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices() as usize;
    let mut offsets = vec![0u32; n + 1];
    for e in g.edges() {
        offsets[e.src as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut adj = vec![(0u32, 0u32); g.num_edges() as usize];
    let mut cursor = offsets.clone();
    for e in g.edges() {
        adj[cursor[e.src as usize] as usize] = (e.dst, e.weight);
        cursor[e.src as usize] += 1;
    }
    let mut dist = vec![INF; n];
    if n == 0 {
        return dist;
    }
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u32, source))]);
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for i in offsets[v as usize]..offsets[v as usize + 1] {
            let (u, w) = adj[i as usize];
            let nd = d.saturating_add(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::{Edge, Graph};

    #[test]
    fn oracle_prefers_cheaper_long_path() {
        // 0 -> 1 (10); 0 -> 2 (1), 2 -> 1 (2): shortest to 1 is 3.
        let g = Graph::new(
            3,
            vec![Edge::new(0, 1, 10), Edge::new(0, 2, 1), Edge::new(2, 1, 2)],
        );
        assert_eq!(dijkstra(&g, 0), vec![0, 3, 1]);
    }

    #[test]
    fn sequential_matches_dijkstra() {
        let g = rmat(&RmatConfig::graph500(7, 700, 8));
        let seq = run_sequential(&Sssp::new(0), &g, 1000);
        assert!(seq.converged);
        assert_eq!(seq.values, dijkstra(&g, 0));
    }

    #[test]
    fn cusha_matches_dijkstra() {
        let g = rmat(&RmatConfig::graph500(7, 700, 9));
        let oracle = dijkstra(&g, 0);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(32),
            CuShaConfig::cw().with_vertices_per_shard(32),
        ] {
            let out = run(&Sssp::new(0), &g, &cfg);
            assert_eq!(out.values, oracle, "{}", out.stats.engine);
        }
    }

    #[test]
    fn saturating_add_avoids_overflow_near_inf() {
        // INF + weight must not wrap and beat real distances.
        let g = Graph::new(3, vec![Edge::new(1, 2, 5)]);
        let out = run_sequential(&Sssp::new(0), &g, 10);
        assert_eq!(out.values, vec![0, INF, INF]);
    }
}
