//! Breadth-First Search (Table 3, row "BFS").
//!
//! Vertex value is the BFS level from the source (`INF` = unreached);
//! `compute` relaxes `min(level, src_level + 1)` over incoming edges.

use crate::INF;
use cusha_core::VertexProgram;
use cusha_graph::{Graph, VertexId};

/// BFS from a single source.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    source: VertexId,
}

impl Bfs {
    /// BFS rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }

    /// The root vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }
}

impl VertexProgram for Bfs {
    type V = u32;
    type E = u32;
    type SV = u32;
    const HAS_EDGE_VALUES: bool = false;
    const HAS_STATIC_VALUES: bool = false;
    const FRONTIER_SAFE: bool = true; // idempotent min-fold over level + 1

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn initial_value(&self, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            INF
        }
    }

    fn edge_value(&self, _raw: u32) -> u32 {
        0
    }

    fn init_compute(&self, local: &mut u32, global: &u32) {
        *local = *global;
    }

    fn compute(&self, src: &u32, _st: &u32, _e: &u32, local: &mut u32) {
        if *src != INF {
            *local = (*local).min(*src + 1);
        }
    }

    fn update_condition(&self, local: &mut u32, old: &u32) -> bool {
        *local < *old
    }

    fn check_invariant(&self, prev: &[u32], curr: &[u32]) -> Result<(), String> {
        // Min-folding over `level + 1` only ever lowers levels, and the
        // source is pinned at 0 — any other trajectory is corruption.
        if curr[self.source as usize] != 0 {
            return Err(format!(
                "BFS source {} left level 0 (now {})",
                self.source, curr[self.source as usize]
            ));
        }
        for (v, (&p, &c)) in prev.iter().zip(curr).enumerate() {
            if c > p {
                return Err(format!("BFS level of vertex {v} rose {p} -> {c}"));
            }
        }
        Ok(())
    }

    fn seed_frontier(&self, _g: &Graph) -> Option<Vec<VertexId>> {
        Some(vec![self.source])
    }
}

/// Independent oracle: queue-based BFS over the out-adjacency.
pub fn bfs_levels(g: &cusha_graph::Graph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut offsets = vec![0u32; n + 1];
    for e in g.edges() {
        offsets[e.src as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut adj = vec![0u32; g.num_edges() as usize];
    let mut cursor = offsets.clone();
    for e in g.edges() {
        adj[cursor[e.src as usize] as usize] = e.dst;
        cursor[e.src as usize] += 1;
    }
    let mut levels = vec![INF; n];
    if n == 0 {
        return levels;
    }
    levels[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let next = levels[v as usize] + 1;
        for i in offsets[v as usize]..offsets[v as usize + 1] {
            let u = adj[i as usize];
            if levels[u as usize] == INF {
                levels[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::generators::rmat::{rmat, RmatConfig};
    use cusha_graph::{Edge, Graph};

    fn diamond() -> Graph {
        // 0 -> {1, 2} -> 3; plus an unreachable vertex 4.
        Graph::new(
            5,
            vec![
                Edge::new(0, 1, 1),
                Edge::new(0, 2, 1),
                Edge::new(1, 3, 1),
                Edge::new(2, 3, 1),
            ],
        )
    }

    #[test]
    fn oracle_on_diamond() {
        assert_eq!(bfs_levels(&diamond(), 0), vec![0, 1, 1, 2, INF]);
    }

    #[test]
    fn sequential_matches_oracle() {
        let g = rmat(&RmatConfig::graph500(7, 600, 5));
        let seq = run_sequential(&Bfs::new(0), &g, 1000);
        assert!(seq.converged);
        assert_eq!(seq.values, bfs_levels(&g, 0));
    }

    #[test]
    fn cusha_gs_and_cw_match_oracle() {
        let g = rmat(&RmatConfig::graph500(7, 800, 6));
        let oracle = bfs_levels(&g, 0);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(32),
            CuShaConfig::cw().with_vertices_per_shard(32),
        ] {
            let out = run(&Bfs::new(0), &g, &cfg);
            assert!(out.stats.converged);
            assert_eq!(out.values, oracle, "{}", out.stats.engine);
        }
    }

    #[test]
    fn different_source() {
        let g = diamond();
        let out = run(
            &Bfs::new(1),
            &g,
            &CuShaConfig::gs().with_vertices_per_shard(2),
        );
        assert_eq!(out.values, bfs_levels(&g, 1));
        assert_eq!(out.values, vec![INF, 0, INF, 1, INF]);
    }
}
