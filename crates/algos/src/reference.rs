//! Sequential reference executor.
//!
//! Runs a [`VertexProgram`] with Gauss-Seidel sweeps over the in-edge CSR:
//! each pass applies `init_compute` → `compute`(all in-edges) →
//! `update_condition` to every vertex in index order, with updates
//! immediately visible (matching CuSha's asynchronous visibility). For the
//! monotone integer algorithms the unique fixed point makes this an *exact*
//! oracle; for the float algorithms it stops within the same tolerance band
//! as the parallel engines.

use cusha_core::VertexProgram;
use cusha_graph::{Csr, Graph};

/// Result of a sequential run.
#[derive(Clone, Debug)]
pub struct SequentialOutput<V> {
    /// Final vertex values.
    pub values: Vec<V>,
    /// Sweeps executed.
    pub iterations: u32,
    /// Whether a fixpoint was reached before `max_iterations`.
    pub converged: bool,
}

/// Runs `prog` to convergence (or `max_iterations`) sequentially.
pub fn run_sequential<P: VertexProgram>(
    prog: &P,
    g: &Graph,
    max_iterations: u32,
) -> SequentialOutput<P::V> {
    let csr = Csr::from_graph(g);
    let statics = prog.static_values(g);
    let edge_values: Vec<P::E> = {
        let by_edge_id = prog.edge_values(g);
        csr.edge_ids()
            .iter()
            .map(|&id| by_edge_id[id as usize])
            .collect()
    };
    let n = g.num_vertices();
    let mut values: Vec<P::V> = (0..n).map(|v| prog.initial_value(v)).collect();
    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iterations {
        iterations += 1;
        let mut changed = false;
        for v in 0..n {
            let mut local = P::V::default();
            prog.init_compute(&mut local, &values[v as usize]);
            let r = csr.in_range(v);
            for slot in r {
                let src = csr.src_indxs()[slot] as usize;
                let src_val = values[src];
                prog.compute(&src_val, &statics[src], &edge_values[slot], &mut local);
            }
            if prog.update_condition(&mut local, &values[v as usize]) {
                values[v as usize] = local;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    SequentialOutput {
        values,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::INF;
    use cusha_graph::{Edge, Graph};

    #[test]
    fn bfs_on_a_path() {
        let g = Graph::new(
            4,
            vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(2, 3, 1)],
        );
        let out = run_sequential(&Bfs::new(0), &g, 100);
        assert!(out.converged);
        assert_eq!(out.values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph_converges_in_one_sweep() {
        let g = Graph::empty(3);
        let out = run_sequential(&Bfs::new(0), &g, 100);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.values, vec![0, INF, INF]);
    }

    #[test]
    fn iteration_cap_reported() {
        // A chain pointing against the sweep order needs one sweep per hop;
        // capping at 1 leaves it unconverged.
        let g = Graph::new(5, (0..4).map(|v| Edge::new(v + 1, v, 1)).collect());
        let out = run_sequential(&Bfs::new(4), &g, 1);
        assert!(!out.converged);
        assert_eq!(out.iterations, 1);
        // Uncapped it reaches levels 4,3,2,1,0.
        let full = run_sequential(&Bfs::new(4), &g, 100);
        assert!(full.converged);
        assert_eq!(full.values, vec![4, 3, 2, 1, 0]);
    }
}
