#![warn(missing_docs)]

//! The eight graph benchmarks of the paper's Table 3, expressed as
//! [`cusha_core::VertexProgram`]s, plus sequential reference oracles.
//!
//! | Module | Benchmark | Vertex | Edge | Static |
//! |---|---|---|---|---|
//! | [`bfs`] | Breadth-First Search | `u32` level | — | — |
//! | [`sssp`] | Single-Source Shortest Path | `u32` dist | `u32` weight | — |
//! | [`pagerank`] | PageRank | `f32` rank | — | `u32` degree |
//! | [`cc`] | Connected Components | `u32` label | — | — |
//! | [`sswp`] | Single-Source Widest Path | `u32` width | `u32` width | — |
//! | [`nn`] | Neural Network | `f32` activation | `f32` weight | — |
//! | [`heat`] | Heat Simulation | `(f32, f32)` (Q, Q_new) | `f32` coeff | — |
//! | [`circuit`] | Circuit Simulation | `(f32, f32)` (V, Gsum/anchor) | `f32` G | — |
//!
//! Every program is exercised by four executors that must agree: the CuSha
//! engine (GS and CW), the VWC-CSR baseline, the MTCPU baseline, and the
//! Gauss-Seidel [`mod@reference`] executor in this crate. The monotone integer
//! algorithms (BFS, SSSP, CC, SSWP) additionally have *independent* oracles
//! (queue BFS, Dijkstra, union-find, max-min Dijkstra) that do not share a
//! line of code with the vertex programs.

pub mod batch;
pub mod bfs;
pub mod cc;
pub mod circuit;
pub mod heat;
pub mod msbfs;
pub mod nn;
pub mod pagerank;
pub mod reference;
pub mod sssp;
pub mod sswp;

pub use batch::{extract_lane, plan_pairs, FusedPair, TraversalKind};
pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use circuit::CircuitSimulation;
pub use heat::HeatSimulation;
pub use msbfs::MultiSourceBfs;
pub use nn::NeuralNetwork;
pub use pagerank::PageRank;
pub use reference::run_sequential;
pub use sssp::Sssp;
pub use sswp::Sswp;

/// "Infinity" marker for the integer-valued path algorithms.
pub const INF: u32 = u32::MAX;

/// All benchmark names, in the paper's Table 2/4 column order.
pub const BENCHMARK_NAMES: [&str; 8] = ["BFS", "SSSP", "PR", "CC", "SSWP", "NN", "HS", "CS"];

/// Asserts two `f32` slices agree within `tol` (used by the float-valued
/// algorithms, whose different-but-equivalent execution orders stop within
/// tolerance of the same fixed point).
pub fn assert_approx_eq(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol, "index {i}: {x} vs {y} (tol {tol})");
    }
}
