//! Heat Simulation (Table 3, row "HS").
//!
//! Explicit heat diffusion on the graph: each vertex carries `(Q, Q_new)`;
//! `compute` accumulates `(Q(src) - Q(v)) * coeff(edge)` into `Q_new`, and
//! `update_condition` commits `Q = Q_new` while the change exceeds the
//! tolerance. Edge coefficients map to small conductances so the explicit
//! scheme is stable (`Σ coeff` per vertex below 1 on the graphs we build).

use cusha_core::VertexProgram;
use cusha_graph::VertexId;

/// Default convergence tolerance on temperature change. Temperatures span
/// `[0, 100)`, so `1e-2` is a 0.01 % relative stop — tight enough for the
/// physics, loose enough to cut diffusion's long geometric tail.
pub const DEFAULT_TOLERANCE: f32 = 1e-2;

/// Explicit heat-diffusion iteration.
#[derive(Clone, Copy, Debug)]
pub struct HeatSimulation {
    /// Convergence tolerance.
    pub tolerance: f32,
    /// Scales raw weight seeds into conductances; lower = more stable.
    pub coeff_scale: f32,
}

impl HeatSimulation {
    /// Defaults: tolerance `1e-3`, coefficient scale `0.5`. Coefficients
    /// are additionally normalized by each destination's in-degree (see
    /// [`VertexProgram::edge_values`]), so the per-vertex conductance sum
    /// stays below `coeff_scale` and the explicit scheme is stable on
    /// arbitrary (e.g. power-law) graphs.
    pub fn new() -> Self {
        HeatSimulation {
            tolerance: DEFAULT_TOLERANCE,
            coeff_scale: 0.5,
        }
    }

    /// Custom tolerance, default coefficient scale.
    pub fn with_tolerance(tolerance: f32) -> Self {
        HeatSimulation {
            tolerance,
            ..Self::new()
        }
    }

    /// Deterministic initial temperature in `[0, 100)`.
    fn seed_temperature(v: VertexId) -> f32 {
        (v.wrapping_mul(2654435761) % 100) as f32
    }
}

impl Default for HeatSimulation {
    fn default() -> Self {
        Self::new()
    }
}

impl VertexProgram for HeatSimulation {
    type V = (f32, f32); // (Q, Q_new)
    type E = f32; // coeff
    type SV = u32;
    const HAS_EDGE_VALUES: bool = true;
    const HAS_STATIC_VALUES: bool = false;
    const COMPUTE_COST: u64 = 3;

    fn name(&self) -> &'static str {
        "HS"
    }

    fn initial_value(&self, v: VertexId) -> (f32, f32) {
        let q = Self::seed_temperature(v);
        (q, q)
    }

    fn edge_value(&self, raw: u32) -> f32 {
        // Unnormalized mapping; engines use `edge_values`, which divides by
        // the destination's in-degree for unconditional stability.
        (raw as f32 / 64.0) * self.coeff_scale
    }

    fn edge_values(&self, g: &cusha_graph::Graph) -> Vec<f32> {
        let in_deg = g.in_degrees();
        g.edges()
            .iter()
            .map(|e| self.edge_value(e.weight) / in_deg[e.dst as usize].max(1) as f32)
            .collect()
    }

    fn init_compute(&self, local: &mut (f32, f32), global: &(f32, f32)) {
        local.0 = global.0;
        local.1 = local.0;
    }

    fn compute(&self, src: &(f32, f32), _st: &u32, coeff: &f32, local: &mut (f32, f32)) {
        local.1 += (src.0 - local.0) * *coeff;
    }

    fn update_condition(&self, local: &mut (f32, f32), _old: &(f32, f32)) -> bool {
        let changed = (local.0 - local.1).abs() > self.tolerance;
        if changed {
            local.0 = local.1;
        }
        changed
    }

    fn check_invariant(&self, _prev: &[(f32, f32)], curr: &[(f32, f32)]) -> Result<(), String> {
        // With per-vertex conductance sums below 1, each committed `Q` is a
        // convex combination of existing temperatures, so the range of the
        // initial seeds `[0, 100)` can never be escaped.
        for (v, &(q, q_new)) in curr.iter().enumerate() {
            if !q.is_finite() || !q_new.is_finite() || !(0.0..100.0).contains(&q) {
                return Err(format!("HS temperature of vertex {v} is ({q}, {q_new})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::generators::lattice::lattice2d;
    use cusha_graph::{Edge, Graph};

    #[test]
    fn two_vertices_exchange_heat_toward_equilibrium() {
        // Symmetric pair at 0 and 100: both drift toward each other.
        let mut hs = HeatSimulation::with_tolerance(1e-4);
        hs.coeff_scale = 0.2;
        let g = Graph::new(2, vec![Edge::new(0, 1, 64), Edge::new(1, 0, 64)]);
        let init: Vec<f32> = (0..2).map(|v| hs.initial_value(v).0).collect();
        let seq = run_sequential(&hs, &g, 100_000);
        assert!(seq.converged);
        let (a, b) = (seq.values[0].0, seq.values[1].0);
        // Heat exchange narrows the gap.
        assert!((a - b).abs() < (init[0] - init[1]).abs());
    }

    #[test]
    fn isolated_vertices_never_change() {
        let g = Graph::empty(3);
        let hs = HeatSimulation::new();
        let seq = run_sequential(&hs, &g, 10);
        assert!(seq.converged);
        for v in 0..3u32 {
            assert_eq!(seq.values[v as usize].0, hs.initial_value(v).0);
        }
    }

    #[test]
    fn cusha_matches_sequential_temperatures() {
        let g = lattice2d(8, 8, 1.0, 0, 3);
        let hs = HeatSimulation::with_tolerance(1e-4);
        let seq = run_sequential(&hs, &g, 100_000);
        assert!(seq.converged);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(16),
            CuShaConfig::cw().with_vertices_per_shard(16),
        ] {
            let out = run(&hs, &g, &cfg);
            assert!(out.stats.converged);
            let a: Vec<f32> = out.values.iter().map(|v| v.0).collect();
            let b: Vec<f32> = seq.values.iter().map(|v| v.0).collect();
            crate::assert_approx_eq(&a, &b, 0.5);
        }
    }

    #[test]
    fn diffusion_is_stable_on_lattice() {
        // Temperatures must stay within the initial range (maximum
        // principle for a stable explicit scheme).
        let g = lattice2d(10, 10, 1.0, 0, 4);
        let seq = run_sequential(&HeatSimulation::new(), &g, 10_000);
        assert!(seq.converged);
        for v in &seq.values {
            assert!(v.0 >= -1.0 && v.0 <= 101.0, "temperature {}", v.0);
        }
    }
}
