//! Connected Components (Table 3, row "CC").
//!
//! Label propagation: every vertex starts with its own id and repeatedly
//! takes the minimum of its in-neighbours' labels. On a symmetric
//! (undirected) graph the fixpoint labels every vertex with the smallest id
//! of its weakly-connected component; on a directed graph the fixpoint is
//! the minimum id able to reach each vertex.

use cusha_core::VertexProgram;
use cusha_graph::VertexId;

/// Min-label connected components.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Constructs the program.
    pub fn new() -> Self {
        ConnectedComponents
    }
}

impl VertexProgram for ConnectedComponents {
    type V = u32;
    type E = u32;
    type SV = u32;
    const HAS_EDGE_VALUES: bool = false;
    const HAS_STATIC_VALUES: bool = false;
    const COMPUTE_COST: u64 = 1;
    const FRONTIER_SAFE: bool = true; // idempotent min-label fold

    fn name(&self) -> &'static str {
        "CC"
    }

    fn initial_value(&self, v: VertexId) -> u32 {
        v
    }

    fn edge_value(&self, _raw: u32) -> u32 {
        0
    }

    fn init_compute(&self, local: &mut u32, global: &u32) {
        *local = *global;
    }

    fn compute(&self, src: &u32, _st: &u32, _e: &u32, local: &mut u32) {
        *local = (*local).min(*src);
    }

    fn update_condition(&self, local: &mut u32, old: &u32) -> bool {
        *local < *old
    }

    fn check_invariant(&self, prev: &[u32], curr: &[u32]) -> Result<(), String> {
        // Min-label propagation only lowers labels, and no label can drop
        // below 0 or appear from outside the vertex-id range.
        let n = curr.len() as u32;
        for (v, (&p, &c)) in prev.iter().zip(curr).enumerate() {
            if c > p {
                return Err(format!("CC label of vertex {v} rose {p} -> {c}"));
            }
            if c >= n {
                return Err(format!("CC label {c} of vertex {v} is not a vertex id"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_sequential;
    use cusha_core::{run, CuShaConfig};
    use cusha_graph::analysis::weak_components;
    use cusha_graph::generators::erdos_renyi::erdos_renyi;
    use cusha_graph::{Edge, Graph};

    #[test]
    fn sequential_matches_union_find_on_symmetric_graph() {
        let g = erdos_renyi(128, 200, 12).symmetrized();
        let seq = run_sequential(&ConnectedComponents::new(), &g, 10_000);
        assert!(seq.converged);
        assert_eq!(seq.values, weak_components(&g));
    }

    #[test]
    fn cusha_matches_union_find_on_symmetric_graph() {
        let g = erdos_renyi(128, 150, 13).symmetrized();
        let oracle = weak_components(&g);
        for cfg in [
            CuShaConfig::gs().with_vertices_per_shard(16),
            CuShaConfig::cw().with_vertices_per_shard(16),
        ] {
            let out = run(&ConnectedComponents::new(), &g, &cfg);
            assert_eq!(out.values, oracle, "{}", out.stats.engine);
        }
    }

    #[test]
    fn isolated_vertices_keep_their_ids() {
        let g = Graph::new(4, vec![Edge::new(2, 3, 1), Edge::new(3, 2, 1)]);
        let seq = run_sequential(&ConnectedComponents::new(), &g, 100);
        assert_eq!(seq.values, vec![0, 1, 2, 2]);
    }

    #[test]
    fn directed_fixpoint_is_min_reaching_id() {
        // 0 -> 1 -> 2 but nothing reaches 0.
        let g = Graph::new(3, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        let seq = run_sequential(&ConnectedComponents::new(), &g, 100);
        assert_eq!(seq.values, vec![0, 0, 0]);
        let g2 = Graph::new(3, vec![Edge::new(2, 1, 1)]);
        let seq2 = run_sequential(&ConnectedComponents::new(), &g2, 100);
        assert_eq!(seq2.values, vec![0, 1, 2]);
    }
}
